//! NPB BT: block-tridiagonal ADI solver on a 3-D structured grid.
//!
//! Each ADI sweep solves, along every grid line of each direction, a block
//! tridiagonal system with 5×5 blocks (the five conserved variables of the
//! CFD formulation). The blocks are assembled from the current solution
//! `u`, eliminated with the block Thomas algorithm (real 5×5 Gaussian
//! elimination), and the solution is written back to `u`.
//!
//! Memory signature reproduced: unit-stride line sweeps in x, `5·nz`-stride
//! in y, `5·ny·nz`-stride in z over the `u`/`rhs` arrays, plus a reused
//! per-line scratch region for the eliminated coefficient blocks. Block
//! loads/stores are emitted as block-granularity events (40 B and 200 B)
//! which the hierarchy splits into line-sized references.

use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceEvent, TraceSink};

/// Components per grid cell (the five CFD variables).
const NC: usize = 5;

/// 5×5 dense block helpers (row-major `[f64; 25]`), untraced register math.
mod block5 {
    use super::NC;

    pub type Block = [f64; NC * NC];
    pub type Vec5 = [f64; NC];

    pub fn identity(scale: f64) -> Block {
        let mut b = [0.0; NC * NC];
        for i in 0..NC {
            b[i * NC + i] = scale;
        }
        b
    }

    /// Fixed coupling pattern mixing the components (keeps blocks dense).
    pub fn coupling(scale: f64) -> Block {
        let mut b = [0.0; NC * NC];
        for i in 0..NC {
            for j in 0..NC {
                if i != j {
                    b[i * NC + j] = scale / (1.0 + (i as f64 - j as f64).abs());
                }
            }
        }
        b
    }

    pub fn add(a: &Block, b: &Block) -> Block {
        let mut out = [0.0; NC * NC];
        for i in 0..NC * NC {
            out[i] = a[i] + b[i];
        }
        out
    }

    pub fn matmul(a: &Block, b: &Block) -> Block {
        let mut out = [0.0; NC * NC];
        for i in 0..NC {
            for k in 0..NC {
                let aik = a[i * NC + k];
                for j in 0..NC {
                    out[i * NC + j] += aik * b[k * NC + j];
                }
            }
        }
        out
    }

    pub fn sub(a: &Block, b: &Block) -> Block {
        let mut out = [0.0; NC * NC];
        for i in 0..NC * NC {
            out[i] = a[i] - b[i];
        }
        out
    }

    pub fn matvec(a: &Block, x: &Vec5) -> Vec5 {
        let mut out = [0.0; NC];
        for i in 0..NC {
            for j in 0..NC {
                out[i] += a[i * NC + j] * x[j];
            }
        }
        out
    }

    /// Solve `A X = B` for the 5×5 matrix `X` (Gauss with partial pivoting).
    pub fn solve_mat(a: &Block, b: &Block) -> Block {
        let mut m = *a;
        let mut x = *b;
        for col in 0..NC {
            // pivot
            let mut piv = col;
            for r in col + 1..NC {
                if m[r * NC + col].abs() > m[piv * NC + col].abs() {
                    piv = r;
                }
            }
            if piv != col {
                for j in 0..NC {
                    m.swap(col * NC + j, piv * NC + j);
                    x.swap(col * NC + j, piv * NC + j);
                }
            }
            let d = m[col * NC + col];
            debug_assert!(d.abs() > 1e-12, "singular block");
            for j in 0..NC {
                m[col * NC + j] /= d;
                x[col * NC + j] /= d;
            }
            for r in 0..NC {
                if r == col {
                    continue;
                }
                let f = m[r * NC + col];
                if f == 0.0 {
                    continue;
                }
                for j in 0..NC {
                    m[r * NC + j] -= f * m[col * NC + j];
                    x[r * NC + j] -= f * x[col * NC + j];
                }
            }
        }
        x
    }

    /// Solve `A x = b` for the 5-vector `x`.
    pub fn solve_vec(a: &Block, b: &Vec5) -> Vec5 {
        let mut bm = [0.0; NC * NC];
        for i in 0..NC {
            bm[i * NC] = b[i];
        }
        let xm = solve_mat(a, &bm);
        let mut out = [0.0; NC];
        for i in 0..NC {
            out[i] = xm[i * NC];
        }
        out
    }
}

use block5::{Block, Vec5};

/// BT problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtParams {
    /// Grid extent per dimension (cube grid).
    pub n: usize,
    /// ADI time steps (each sweeps x, y, z).
    pub steps: usize,
}

impl BtParams {
    /// Preset for a size class.
    pub fn class(class: Class) -> Self {
        match class {
            // ≈ 5 MiB of grid state
            Class::Mini => Self { n: 40, steps: 1 },
            // ≈ 21 MiB
            Class::Demo => Self { n: 64, steps: 1 },
            // ≈ 80 MiB
            Class::Large => Self { n: 100, steps: 1 },
        }
    }
}

/// The BT benchmark instance.
pub struct Bt {
    params: BtParams,
    space: AddressSpace,
    /// Cell state, `n³ × 5` doubles, layout `((i·n + j)·n + k)·5 + c`.
    u: SimVec<f64>,
    /// Right-hand side, same layout.
    rhs: SimVec<f64>,
    /// Per-line scratch: eliminated upper blocks `C'`, `n × 25` doubles.
    cprime: SimVec<f64>,
    /// Saved copy of the verification line (blocks + rhs) for `verify`.
    check: Option<LineCheck>,
    ran: bool,
}

struct LineCheck {
    a: Vec<Block>,
    b: Vec<Block>,
    c: Vec<Block>,
    d: Vec<Vec5>,
    x: Vec<Vec5>,
}

impl Bt {
    /// Allocate and initialize (untraced) a BT instance.
    pub fn new(params: BtParams) -> Self {
        let n = params.n;
        assert!(n >= 4, "grid too small");
        let mut space = AddressSpace::new();
        let cells = n * n * n;
        let u = SimVec::from_fn(&mut space, "u", cells * NC, |i| {
            // smooth nontrivial initial field
            0.5 + 0.3 * ((i % 97) as f64 / 97.0) + 0.2 * ((i % 13) as f64 / 13.0)
        });
        let rhs = SimVec::from_fn(&mut space, "rhs", cells * NC, |i| {
            ((i % 29) as f64 - 14.0) / 29.0
        });
        let cprime = SimVec::<f64>::zeroed(&mut space, "lhs_scratch", n * NC * NC);
        Self {
            params,
            space,
            u,
            rhs,
            cprime,
            check: None,
            ran: false,
        }
    }

    #[inline]
    fn cell(&self, n: usize, i: usize, j: usize, k: usize) -> usize {
        ((i * n + j) * n + k) * NC
    }

    /// Traced block read of the 5 components at flat element index `base`.
    #[inline]
    fn ld_block5(v: &SimVec<f64>, base: usize, sink: &mut dyn TraceSink) -> Vec5 {
        sink.access(TraceEvent::load(v.addr_of(base), (NC * 8) as u32));
        let s = v.as_slice();
        [s[base], s[base + 1], s[base + 2], s[base + 3], s[base + 4]]
    }

    /// Traced block write of the 5 components at flat element index `base`.
    #[inline]
    fn st_block5(v: &mut SimVec<f64>, base: usize, val: &Vec5, sink: &mut dyn TraceSink) {
        sink.access(TraceEvent::store(v.addr_of(base), (NC * 8) as u32));
        let s = v.as_mut_slice();
        s[base..base + NC].copy_from_slice(val);
    }

    /// Traced 25-double block write into the scratch region.
    #[inline]
    fn st_block25(v: &mut SimVec<f64>, idx: usize, val: &Block, sink: &mut dyn TraceSink) {
        let base = idx * NC * NC;
        sink.access(TraceEvent::store(v.addr_of(base), (NC * NC * 8) as u32));
        v.as_mut_slice()[base..base + NC * NC].copy_from_slice(val);
    }

    /// Traced 25-double block read from the scratch region.
    #[inline]
    fn ld_block25(v: &SimVec<f64>, idx: usize, sink: &mut dyn TraceSink) -> Block {
        let base = idx * NC * NC;
        sink.access(TraceEvent::load(v.addr_of(base), (NC * NC * 8) as u32));
        let mut out = [0.0; NC * NC];
        out.copy_from_slice(&v.as_slice()[base..base + NC * NC]);
        out
    }

    /// Assemble the tridiagonal blocks at line position `i` from the cell
    /// state (diagonally dominant by construction).
    fn assemble(u_here: &Vec5) -> (Block, Block, Block) {
        let mean = u_here.iter().sum::<f64>() / NC as f64;
        let diag = block5::add(&block5::identity(4.0 + 0.1 * mean), &block5::coupling(0.05));
        let off = block5::add(&block5::identity(-1.0), &block5::coupling(0.02));
        (off, diag, off)
    }

    /// Solve the block tridiagonal system along one line. `idx(i)` maps the
    /// line position to the flat element index of the cell's first
    /// component. `save` captures the system for verification.
    fn solve_line(
        u: &mut SimVec<f64>,
        rhs: &mut SimVec<f64>,
        cprime: &mut SimVec<f64>,
        n: usize,
        idx: impl Fn(usize) -> usize,
        sink: &mut dyn TraceSink,
        mut save: Option<&mut LineCheck>,
    ) {
        // forward elimination
        let mut prev_c: Block = [0.0; NC * NC];
        let mut prev_d: Vec5 = [0.0; NC];
        for i in 0..n {
            let base = idx(i);
            let u_here = Self::ld_block5(u, base, sink);
            let (a, b, c) = Self::assemble(&u_here);
            let d = Self::ld_block5(rhs, base, sink);
            if let Some(chk) = save.as_deref_mut() {
                chk.a.push(a);
                chk.b.push(b);
                chk.c.push(c);
                chk.d.push(d);
            }
            let (denom, rhs_i) = if i == 0 {
                (b, d)
            } else {
                let bm = block5::sub(&b, &block5::matmul(&a, &prev_c));
                let av = block5::matvec(&a, &prev_d);
                let mut dv = d;
                for t in 0..NC {
                    dv[t] -= av[t];
                }
                (bm, dv)
            };
            let cp = block5::solve_mat(&denom, &c);
            let dp = block5::solve_vec(&denom, &rhs_i);
            Self::st_block25(cprime, i, &cp, sink);
            Self::st_block5(rhs, base, &dp, sink);
            prev_c = cp;
            prev_d = dp;
        }
        // back substitution into u
        let mut x_next: Vec5 = [0.0; NC];
        for i in (0..n).rev() {
            let base = idx(i);
            let dp = Self::ld_block5(rhs, base, sink);
            let mut x = dp;
            if i + 1 < n {
                let cp = Self::ld_block25(cprime, i, sink);
                let cx = block5::matvec(&cp, &x_next);
                for t in 0..NC {
                    x[t] -= cx[t];
                }
            }
            Self::st_block5(u, base, &x, sink);
            if let Some(chk) = save.as_deref_mut() {
                chk.x.push(x);
            }
            x_next = x;
        }
        if let Some(chk) = save {
            chk.x.reverse();
        }
    }
}

impl Workload for Bt {
    fn name(&self) -> &'static str {
        "BT"
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        let n = self.params.n;
        let mut check = LineCheck {
            a: vec![],
            b: vec![],
            c: vec![],
            d: vec![],
            x: vec![],
        };
        for step in 0..self.params.steps {
            // x-direction: innermost index k is the line axis (unit stride)
            for i in 0..n {
                for j in 0..n {
                    let base = self.cell(n, i, j, 0);
                    let save = (step == 0 && i == 1 && j == 1).then_some(&mut check);
                    Self::solve_line(
                        &mut self.u,
                        &mut self.rhs,
                        &mut self.cprime,
                        n,
                        |t| base + t * NC,
                        sink,
                        save,
                    );
                }
            }
            // y-direction: stride n·NC
            for i in 0..n {
                for k in 0..n {
                    let base = self.cell(n, i, 0, k);
                    Self::solve_line(
                        &mut self.u,
                        &mut self.rhs,
                        &mut self.cprime,
                        n,
                        |t| base + t * n * NC,
                        sink,
                        None,
                    );
                }
            }
            // z-direction: stride n²·NC
            for j in 0..n {
                for k in 0..n {
                    let base = self.cell(n, 0, j, k);
                    Self::solve_line(
                        &mut self.u,
                        &mut self.rhs,
                        &mut self.cprime,
                        n,
                        |t| base + t * n * n * NC,
                        sink,
                        None,
                    );
                }
            }
        }
        sink.flush();
        self.check = Some(check);
        self.ran = true;
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        if !self.ran {
            return Err("BT has not run".into());
        }
        let chk = self.check.as_ref().unwrap();
        let n = self.params.n;
        if chk.x.len() != n {
            return Err(format!(
                "verification line has {} solutions, expected {n}",
                chk.x.len()
            ));
        }
        // residual of the saved block-tridiagonal system
        let mut worst = 0.0f64;
        for i in 0..n {
            let mut lhs = block5::matvec(&chk.b[i], &chk.x[i]);
            if i > 0 {
                let t = block5::matvec(&chk.a[i], &chk.x[i - 1]);
                for (l, v) in lhs.iter_mut().zip(t) {
                    *l += v;
                }
            }
            if i + 1 < n {
                let t = block5::matvec(&chk.c[i], &chk.x[i + 1]);
                for (l, v) in lhs.iter_mut().zip(t) {
                    *l += v;
                }
            }
            for (l, d) in lhs.iter().zip(&chk.d[i]) {
                worst = worst.max((l - d).abs());
            }
        }
        if worst > 1e-8 {
            return Err(format!("block tridiagonal residual too large: {worst}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::{CountingSink, RecordingSink};

    #[test]
    fn block5_solve_roundtrip() {
        let a = block5::add(&block5::identity(3.0), &block5::coupling(0.2));
        let x = [1.0, -2.0, 0.5, 4.0, -1.0];
        let b = block5::matvec(&a, &x);
        let got = block5::solve_vec(&a, &b);
        for i in 0..NC {
            assert!((got[i] - x[i]).abs() < 1e-10, "{got:?} vs {x:?}");
        }
    }

    #[test]
    fn block5_solve_mat_roundtrip() {
        let a = block5::add(&block5::identity(2.5), &block5::coupling(0.3));
        let x = block5::coupling(1.7);
        let b = block5::matmul(&a, &x);
        let got = block5::solve_mat(&a, &b);
        for i in 0..NC * NC {
            assert!((got[i] - x[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn runs_and_verifies_small() {
        let mut bt = Bt::new(BtParams { n: 8, steps: 1 });
        let mut sink = CountingSink::new();
        bt.run(&mut sink);
        bt.verify().unwrap();
        assert!(sink.loads > 1000);
        assert!(sink.stores > 1000);
    }

    #[test]
    fn verify_before_run_errors() {
        let bt = Bt::new(BtParams { n: 8, steps: 1 });
        assert!(bt.verify().is_err());
    }

    #[test]
    fn directional_strides_present() {
        let mut bt = Bt::new(BtParams { n: 8, steps: 1 });
        let mut rec = RecordingSink::new();
        bt.run(&mut rec);
        // the u region must be touched at block stride 40 (x lines),
        // 8·40 (y lines) and 64·40 (z lines)
        let u0 = bt.u.addr_of(0);
        let u_end = bt.u.addr_of(bt.u.len() - 1);
        let mut strides = std::collections::HashSet::new();
        let u_events: Vec<u64> = rec
            .events
            .iter()
            .filter(|e| e.addr >= u0 && e.addr <= u_end && e.size == 40)
            .map(|e| e.addr)
            .collect();
        for w in u_events.windows(2) {
            strides.insert(w[1].abs_diff(w[0]));
        }
        assert!(strides.contains(&40), "unit-stride line sweeps missing");
        assert!(strides.contains(&(8 * 40)), "y-stride sweeps missing");
        assert!(strides.contains(&(64 * 40)), "z-stride sweeps missing");
    }
}
