//! Structured export: the run manifest plus a full metrics dump as
//! deterministic JSON, and a human-readable instrumentation summary.
//!
//! Determinism contract: for a fixed manifest and fixed metric values the
//! emitted bytes are identical across runs — keys come out name-sorted
//! (the registry is a `BTreeMap`), every value is an integer, and there is
//! no timestamp. The only run-varying values are span `wall_ns`, which
//! [`crate::set_deterministic`] zeroes so golden tests can byte-compare
//! two exports.

use crate::registry::{HistogramSnapshot, MetricValue, MetricsRegistry};
use crate::span::SpanNode;
use std::fmt::Write as _;

/// Minimal JSON building blocks shared by the exporter and the CLI's
/// `--json` report mode.
pub mod json {
    use std::fmt::Write as _;

    /// Escape `s` for inclusion inside a JSON string literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    /// An incremental `{...}` object builder producing compact JSON.
    #[derive(Debug)]
    pub struct Obj {
        buf: String,
        first: bool,
    }

    impl Obj {
        /// Start an empty object.
        pub fn new() -> Self {
            Self {
                buf: String::from("{"),
                first: true,
            }
        }

        fn key(&mut self, name: &str) {
            if !self.first {
                self.buf.push(',');
            }
            self.first = false;
            let _ = write!(self.buf, "\"{}\":", escape(name));
        }

        /// Add a string field.
        pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
            self.key(name);
            let _ = write!(self.buf, "\"{}\"", escape(value));
            self
        }

        /// Add an unsigned integer field.
        pub fn u64(&mut self, name: &str, value: u64) -> &mut Self {
            self.key(name);
            let _ = write!(self.buf, "{value}");
            self
        }

        /// Add a float field, formatted with enough digits to round-trip.
        pub fn f64(&mut self, name: &str, value: f64) -> &mut Self {
            self.key(name);
            if value.is_finite() {
                let _ = write!(self.buf, "{value:?}");
            } else {
                self.buf.push_str("null");
            }
            self
        }

        /// Add a boolean field.
        pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
            self.key(name);
            self.buf.push_str(if value { "true" } else { "false" });
            self
        }

        /// Add a field whose value is already-serialized JSON.
        pub fn raw(&mut self, name: &str, value: &str) -> &mut Self {
            self.key(name);
            self.buf.push_str(value);
            self
        }

        /// Close the object and return its JSON text.
        pub fn finish(mut self) -> String {
            self.buf.push('}');
            self.buf
        }
    }

    impl Default for Obj {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Serialize a slice of already-serialized JSON values as an array.
    pub fn array(items: &[String]) -> String {
        let mut buf = String::from("[");
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str(item);
        }
        buf.push(']');
        buf
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    let mut first = true;
    for (i, &count) in h.buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        if !first {
            buckets.push(',');
        }
        first = false;
        let _ = write!(
            buckets,
            "[{},{}]",
            crate::registry::Histogram::bucket_lower_bound(i),
            count
        );
    }
    buckets.push(']');
    let (p50, p90, p99) = h.percentiles();
    let mut obj = json::Obj::new();
    obj.u64("count", h.count())
        .u64("sum", h.sum)
        .u64("p50", p50)
        .u64("p90", p90)
        .u64("p99", p99)
        .raw("buckets", &buckets);
    obj.finish()
}

fn span_json(node: &SpanNode, deterministic: bool) -> String {
    let mut obj = json::Obj::new();
    obj.u64("calls", node.calls)
        .u64("wall_ns", if deterministic { 0 } else { node.wall_ns })
        .u64("events", node.events);
    let mut children = json::Obj::new();
    for (name, child) in &node.children {
        children.raw(name, &span_json(child, deterministic));
    }
    obj.raw("children", &children.finish());
    obj.finish()
}

/// Render the manifest, the full contents of `registry`, and the current
/// span tree as one deterministic JSON document (trailing newline
/// included, so the file is a well-formed text file).
///
/// `manifest` entries are emitted in the order given, under `"manifest"`.
pub fn export_json(manifest: &[(&str, String)], registry: &MetricsRegistry) -> String {
    let deterministic = crate::deterministic();
    let mut root = json::Obj::new();
    root.str("schema", "memsim-obs/1");

    let mut man = json::Obj::new();
    for (key, value) in manifest {
        man.str(key, value);
    }
    root.raw("manifest", &man.finish());

    let mut counters = json::Obj::new();
    let mut gauges = json::Obj::new();
    let mut histograms = json::Obj::new();
    for (name, value) in registry.snapshot() {
        match value {
            MetricValue::Counter(v) => {
                counters.u64(&name, v);
            }
            MetricValue::Gauge(v) => {
                gauges.u64(&name, v);
            }
            MetricValue::Histogram(h) => {
                histograms.raw(&name, &histogram_json(&h));
            }
        }
    }
    root.raw("counters", &counters.finish());
    root.raw("gauges", &gauges.finish());
    root.raw("histograms", &histograms.finish());

    let tree = crate::span::tree();
    let mut spans = json::Obj::new();
    for (name, child) in &tree.children {
        spans.raw(name, &span_json(child, deterministic));
    }
    root.raw("spans", &spans.finish());

    let mut out = root.finish();
    out.push('\n');
    out
}

fn fmt_duration(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_count(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}k", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Render the span tree and a digest of the registry as an indented,
/// human-readable table (the `--progress` end-of-run summary).
pub fn render_summary(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let tree = crate::span::tree();
    if !tree.children.is_empty() {
        out.push_str("phase timings:\n");
        tree.walk(&mut |depth, name, node| {
            let indent = "  ".repeat(depth + 1);
            let mut line = format!(
                "{indent}{name:<width$}",
                width = 28usize.saturating_sub(depth * 2)
            );
            if node.calls > 0 {
                let _ = write!(
                    line,
                    " {:>5}x {:>10}",
                    node.calls,
                    fmt_duration(node.wall_ns)
                );
                if node.events > 0 {
                    let _ = write!(line, " {:>9} events", fmt_count(node.events));
                    if node.wall_ns > 0 {
                        let rate = node.events as f64 / (node.wall_ns as f64 / 1e9);
                        let _ = write!(line, " ({:.1} Mev/s)", rate / 1e6);
                    }
                }
            }
            out.push_str(line.trim_end());
            out.push('\n');
        });
    }
    let snapshot = registry.snapshot();
    if !snapshot.is_empty() {
        out.push_str("metrics:\n");
        for (name, value) in snapshot {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "  {name} = {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "  {name} = {v} (gauge)");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "  {name}: {} samples, sum {}", h.count(), h.sum);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn obj_builder_produces_compact_json() {
        let mut o = json::Obj::new();
        o.str("a", "x").u64("b", 2).bool("c", true).f64("d", 1.5);
        assert_eq!(o.finish(), r#"{"a":"x","b":2,"c":true,"d":1.5}"#);
    }

    #[test]
    fn export_is_deterministic_for_fixed_values() {
        let _lock = crate::test_lock();
        crate::set_enabled(false);
        crate::span::reset();
        let reg = MetricsRegistry::new();
        reg.counter("z.count").add(7);
        reg.gauge("a.gauge").set(3);
        reg.histogram("h").record(5);
        let manifest = [("command", "test".to_string())];
        let one = export_json(&manifest, &reg);
        let two = export_json(&manifest, &reg);
        assert_eq!(one, two);
        assert!(one.contains(r#""z.count":7"#));
        assert!(one.contains(r#""a.gauge":3"#));
        assert!(one.contains(r#""buckets":[[4,1]]"#));
        // One sample of 5 (bucket [4,7]): every quantile is the sample's
        // bucket interpolated at rank 1 of 1, i.e. the upper bound.
        assert!(one.contains(r#""p50":7,"p90":7,"p99":7"#));
        assert!(one.ends_with('\n'));
    }
}
