//! CORAL Graph500 stand-in: BFS over a Kronecker (R-MAT) graph.
//!
//! The generator follows the Graph500 specification's R-MAT recursion
//! (a=0.57, b=0.19, c=0.19, d=0.05) at a given scale and edge factor
//! (the paper runs `-s 22 -e 4`); edges are symmetrized into CSR. The
//! timed kernel is frontier-queue breadth-first search: sequential frontier
//! and offset streams plus the irregular `parent` gather that makes BFS
//! the canonical memory-latency-bound graph benchmark.

use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Graph500 problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Graph500Params {
    /// log2 of the vertex count (Graph500 "scale").
    pub scale: u32,
    /// Edges generated per vertex (Graph500 "edge factor").
    pub edge_factor: u32,
    /// Number of BFS roots to run.
    pub roots: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Graph500Params {
    /// Preset for a size class (the paper runs scale 22, edge factor 4).
    pub fn class(class: Class) -> Self {
        match class {
            // ≈ 6 MiB
            Class::Mini => Self {
                scale: 16,
                edge_factor: 4,
                roots: 1,
                seed: 0x6500,
            },
            // ≈ 90 MiB
            Class::Demo => Self {
                scale: 21,
                edge_factor: 4,
                roots: 1,
                seed: 0x6500,
            },
            // ≈ 180 MiB
            Class::Large => Self {
                scale: 22,
                edge_factor: 4,
                roots: 2,
                seed: 0x6500,
            },
        }
    }
}

/// The Graph500 benchmark instance.
pub struct Graph500 {
    params: Graph500Params,
    space: AddressSpace,
    n: usize,
    /// CSR offsets, length `n + 1`.
    offsets: SimVec<u64>,
    /// CSR adjacency, symmetrized arcs.
    adj: SimVec<u32>,
    /// BFS parent array (-1 = unvisited).
    parent: SimVec<i64>,
    /// Frontier queue.
    queue: SimVec<u32>,
    last_root: Option<u32>,
    visited_last: u64,
}

impl Graph500 {
    /// Generate the graph and allocate BFS state (untraced).
    pub fn new(params: Graph500Params) -> Self {
        let n = 1usize << params.scale;
        let m = n * params.edge_factor as usize;
        let mut rng = SmallRng::seed_from_u64(params.seed);

        // R-MAT edge generation
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut u, mut v) = (0usize, 0usize);
            for bit in (0..params.scale).rev() {
                let r: f64 = rng.random();
                // quadrant probabilities a/b/c/d
                let (ub, vb) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u |= ub << bit;
                v |= vb << bit;
            }
            if u != v {
                src.push(u as u32);
                dst.push(v as u32);
            }
        }

        // symmetrize and build CSR by counting sort (untraced)
        let arcs = src.len() * 2;
        let mut deg = vec![0u64; n + 1];
        for i in 0..src.len() {
            deg[src[i] as usize + 1] += 1;
            deg[dst[i] as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets_raw = deg.clone();
        let mut cursor = deg;
        let mut adj_raw = vec![0u32; arcs];
        for i in 0..src.len() {
            let (a, b) = (src[i] as usize, dst[i] as usize);
            adj_raw[cursor[a] as usize] = b as u32;
            cursor[a] += 1;
            adj_raw[cursor[b] as usize] = a as u32;
            cursor[b] += 1;
        }

        let mut space = AddressSpace::new();
        let offsets = SimVec::from_vec(&mut space, "csr.offsets", offsets_raw);
        let adj = SimVec::from_vec(&mut space, "csr.adj", adj_raw);
        let parent = SimVec::from_fn(&mut space, "parent", n, |_| -1i64);
        let queue = SimVec::<u32>::zeroed(&mut space, "frontier", n);

        Self {
            params,
            space,
            n,
            offsets,
            adj,
            parent,
            queue,
            last_root: None,
            visited_last: 0,
        }
    }

    /// Vertex count.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Symmetrized arc count.
    pub fn arc_count(&self) -> usize {
        self.adj.len()
    }

    /// Pick a root with nonzero degree, deterministically from `salt`.
    fn pick_root(&self, salt: u64) -> u32 {
        let mut rng = SmallRng::seed_from_u64(self.params.seed ^ salt.wrapping_mul(0x9E37_79B9));
        loop {
            let v = rng.random_range(0..self.n);
            let lo = self.offsets.peek(v);
            let hi = self.offsets.peek(v + 1);
            if hi > lo {
                return v as u32;
            }
        }
    }

    /// One traced BFS from `root`; returns visited count.
    fn bfs(&mut self, root: u32, sink: &mut dyn TraceSink) -> u64 {
        // reset parent (untraced: array initialization, not the timed kernel)
        for i in 0..self.n {
            self.parent.poke(i, -1);
        }
        self.parent.st(root as usize, i64::from(root), sink);
        self.queue.st(0, root, sink);
        let mut head = 0usize;
        let mut tail = 1usize;
        let mut visited = 1u64;
        while head < tail {
            let u = self.queue.ld(head, sink) as usize;
            head += 1;
            let lo = self.offsets.ld(u, sink) as usize;
            let hi = self.offsets.ld(u + 1, sink) as usize;
            for k in lo..hi {
                let v = self.adj.ld(k, sink) as usize;
                if self.parent.ld(v, sink) < 0 {
                    self.parent.st(v, u as i64, sink);
                    self.queue.st(tail, v as u32, sink);
                    tail += 1;
                    visited += 1;
                }
            }
        }
        visited
    }
}

impl Workload for Graph500 {
    fn name(&self) -> &'static str {
        "Graph500"
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        for r in 0..self.params.roots {
            let root = self.pick_root(u64::from(r));
            self.visited_last = self.bfs(root, sink);
            self.last_root = Some(root);
        }
        sink.flush();
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        let root = self.last_root.ok_or("Graph500 has not run")? as usize;
        // reference BFS levels, untraced
        let offs = self.offsets.as_slice();
        let adj = self.adj.as_slice();
        let mut level = vec![-1i64; self.n];
        level[root] = 0;
        let mut q = std::collections::VecDeque::from([root]);
        let mut reach = 1u64;
        while let Some(u) = q.pop_front() {
            for &a in &adj[offs[u] as usize..offs[u + 1] as usize] {
                let v = a as usize;
                if level[v] < 0 {
                    level[v] = level[u] + 1;
                    reach += 1;
                    q.push_back(v);
                }
            }
        }
        if reach != self.visited_last {
            return Err(format!(
                "BFS visited {} vertices, reference reaches {reach}",
                self.visited_last
            ));
        }
        if reach < 2 {
            return Err("degenerate BFS: root has no reachable neighbours".into());
        }
        // every discovered parent edge must connect adjacent levels
        for v in 0..self.n {
            let p = self.parent.peek(v);
            if v == root {
                if p != root as i64 {
                    return Err("root parent must be itself".into());
                }
                continue;
            }
            if p >= 0 {
                if level[v] < 0 {
                    return Err(format!("vertex {v} visited but unreachable in reference"));
                }
                if level[v] != level[p as usize] + 1 {
                    return Err(format!(
                        "parent edge {p}->{v} spans levels {} -> {}",
                        level[p as usize], level[v]
                    ));
                }
            } else if level[v] >= 0 {
                return Err(format!("vertex {v} reachable but not visited"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;

    fn tiny() -> Graph500Params {
        Graph500Params {
            scale: 10,
            edge_factor: 8,
            roots: 2,
            seed: 42,
        }
    }

    #[test]
    fn generator_shape() {
        let g = Graph500::new(tiny());
        assert_eq!(g.vertex_count(), 1024);
        // m edges minus self-loops, ×2 for symmetrization
        assert!(
            g.arc_count() > 12_000 && g.arc_count() <= 16_384,
            "{}",
            g.arc_count()
        );
    }

    #[test]
    fn bfs_visits_and_verifies() {
        let mut g = Graph500::new(tiny());
        let mut sink = CountingSink::new();
        g.run(&mut sink);
        g.verify().unwrap();
        // Kronecker graphs have a giant component
        assert!(g.visited_last > 100, "visited only {}", g.visited_last);
        assert!(sink.loads > sink.stores, "BFS is load-dominated");
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        let g = Graph500::new(Graph500Params {
            scale: 12,
            edge_factor: 8,
            roots: 1,
            seed: 7,
        });
        let offs = g.offsets.as_slice();
        let max_deg = (0..g.vertex_count())
            .map(|v| offs[v + 1] - offs[v])
            .max()
            .unwrap();
        let mean_deg = g.arc_count() as u64 / g.vertex_count() as u64;
        assert!(
            max_deg > 10 * mean_deg,
            "R-MAT must be skewed: max {max_deg}, mean {mean_deg}"
        );
    }

    #[test]
    fn verify_before_run_errors() {
        assert!(Graph500::new(tiny()).verify().is_err());
    }

    #[test]
    fn deterministic_graph() {
        let a = Graph500::new(tiny());
        let b = Graph500::new(tiny());
        assert_eq!(a.arc_count(), b.arc_count());
        assert_eq!(a.adj.as_slice(), b.adj.as_slice());
    }
}
