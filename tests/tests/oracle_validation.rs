//! Cross-validation of the cache simulator against an independent oracle:
//! the exact stack-distance analysis in `memsim-trace::reuse`.
//!
//! For any address stream, a fully associative LRU cache of capacity `C`
//! blocks hits exactly the references whose LRU stack distance is `< C`.
//! The analyzer and the simulator share no code on their hot paths, so
//! agreement on real workload streams pins both.

use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy};
use memsim_trace::{ReuseDistance, TraceEvent, TraceSink};
use memsim_workloads::{Cg, CgParams, Hash, HashParams, Workload};

/// Feed one stream into both the simulator and the analyzer.
struct Both {
    sim: Hierarchy<CountingMemory>,
    oracle: ReuseDistance,
}

impl TraceSink for Both {
    fn access(&mut self, ev: TraceEvent) {
        self.sim.access(ev);
        self.oracle.access(ev);
    }

    fn flush(&mut self) {
        self.sim.flush();
    }
}

fn validate(workload: &mut dyn Workload, block_bytes: u32, capacity_blocks: u64) {
    let cache = Cache::new(CacheConfig::fully_associative(
        "FA",
        capacity_blocks * u64::from(block_bytes),
        block_bytes,
    ));
    let mut both = Both {
        sim: Hierarchy::new(vec![cache], CountingMemory::default()),
        oracle: ReuseDistance::new(u64::from(block_bytes)),
    };
    workload.run(&mut both);
    let simulated_hits = both.sim.levels()[0].stats().hits();
    let predicted_hits = both.oracle.predicted_lru_hits(capacity_blocks);
    assert_eq!(
        simulated_hits,
        predicted_hits,
        "{}: simulator and stack-distance oracle disagree at C={capacity_blocks}×{block_bytes}B",
        workload.name()
    );
    // both saw the same reference count
    assert_eq!(both.sim.total_refs(), both.oracle.total_refs());
}

#[test]
fn cg_agrees_with_stack_distance_oracle_at_line_granularity() {
    let mut cg = Cg::new(CgParams {
        n: 4000,
        offdiag_per_row: 5,
        iterations: 2,
        seed: 7,
    });
    validate(&mut cg, 64, 256);
}

#[test]
fn cg_agrees_at_page_granularity() {
    let mut cg = Cg::new(CgParams {
        n: 4000,
        offdiag_per_row: 5,
        iterations: 2,
        seed: 7,
    });
    validate(&mut cg, 4096, 64);
}

#[test]
fn hash_agrees_with_stack_distance_oracle() {
    let mut h = Hash::new(HashParams {
        log2_slots: 14,
        load_factor: 0.5,
        lookups: 20_000,
        seed: 3,
    });
    validate(&mut h, 64, 128);
}

/// The analyzer's miss-ratio curve brackets the set-associative cache:
/// a real 8-way cache cannot beat fully associative LRU by much, and
/// cannot be worse than a cache 8× smaller (loose sanity envelope).
#[test]
fn miss_curve_brackets_set_associative_cache() {
    let mut cg = Cg::new(CgParams {
        n: 4000,
        offdiag_per_row: 5,
        iterations: 2,
        seed: 7,
    });
    let capacity_blocks = 512u64;
    let cache = Cache::new(CacheConfig::new("L", capacity_blocks * 64, 64, 8));
    let mut both = Both {
        sim: Hierarchy::new(vec![cache], CountingMemory::default()),
        oracle: ReuseDistance::new(64),
    };
    cg.run(&mut both);
    let sim_hits = both.sim.levels()[0].stats().hits();
    let fa_same = both.oracle.predicted_lru_hits(capacity_blocks);
    let fa_eighth = both.oracle.predicted_lru_hits(capacity_blocks / 8);
    assert!(
        sim_hits <= fa_same + fa_same / 20,
        "8-way ({sim_hits}) cannot beat fully associative ({fa_same}) by >5%"
    );
    assert!(
        sim_hits >= fa_eighth,
        "8-way ({sim_hits}) cannot be worse than a 1/8-capacity FA cache ({fa_eighth})"
    );
}
