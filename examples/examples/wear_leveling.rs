//! Wear leveling: start-gap on a PCM main memory.
//!
//! The paper defers NVM endurance to future work; this example runs that
//! extension. A Hash workload (random table stores concentrate writes on
//! hot pages) streams through L1-L3 into a PCM terminal, once without wear
//! leveling and once with start-gap enabled, and the per-block write
//! histograms are compared.
//!
//! ```text
//! cargo run --release -p memsim-examples --example wear_leveling
//! ```

use memsim_cache::{Cache, CacheConfig, Hierarchy};
use memsim_examples::human_bytes;
use memsim_memory::StartGapNvm;
use memsim_tech::Technology;
use memsim_trace::{TraceSink, DEFAULT_BASE_ADDR};
use memsim_workloads::{Class, WorkloadKind};

fn run_once(psi: u64) -> StartGapNvm {
    let mut workload = WorkloadKind::Hash.build(Class::Mini);
    let caches = vec![
        Cache::new(CacheConfig::new("L1", 32 << 10, 64, 8)),
        Cache::new(CacheConfig::new("L2", 128 << 10, 64, 8)),
        Cache::new(CacheConfig::new("L3", (20 << 20) / 64, 64, 20)),
    ];
    // PCM sized to the footprint, 256 B wear blocks
    let capacity = workload.footprint_bytes().next_power_of_two();
    let nvm = StartGapNvm::new(Technology::Pcm, capacity, 256, DEFAULT_BASE_ADDR, psi);
    let mut h = Hierarchy::new(caches, nvm);
    workload.run(&mut h);
    h.flush();
    h.into_memory()
}

fn main() {
    println!("streaming Hash through L1-L3 into start-gap PCM ...\n");

    let without = run_once(0); // psi = 0 disables leveling
    let with = run_once(64); // move the gap every 64 writes

    for (label, dev) in [
        ("no wear leveling", &without),
        ("start-gap (psi=64)", &with),
    ] {
        let s = dev.histogram().stats();
        println!("{label}:");
        println!(
            "  device capacity      {}",
            human_bytes(dev.capacity_bytes())
        );
        println!("  total device writes  {}", s.total_writes);
        println!("  hottest block writes {}", s.max_writes);
        println!("  mean block writes    {:.2}", s.mean_writes);
        println!("  imbalance (max/mean) {:.2}", s.imbalance());
        println!("  gap moves            {}", dev.gap_moves());
        println!();
    }

    let overhead = with.histogram().stats().total_writes as f64
        / without.histogram().stats().total_writes.max(1) as f64;
    let improvement =
        without.histogram().stats().imbalance() / with.histogram().stats().imbalance();

    println!("start-gap spreads the hottest block's wear {improvement:.1}x more evenly");
    println!(
        "at the cost of {:.2}% extra device writes (the gap rotation).",
        (overhead - 1.0) * 100.0
    );
    println!("\nlifetime estimate at 10^8 PCM write cycles per cell:");
    for (label, dev) in [("without", &without), ("with", &with)] {
        let s = dev.histogram().stats();
        // writes-to-failure ratio: how many times the observed run could
        // repeat before the hottest block wears out
        let runs = 1e8 / s.max_writes.max(1) as f64;
        println!("  {label:<8} leveling: {runs:.0}x this run before first block failure");
    }
}
