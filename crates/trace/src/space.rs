//! A deterministic virtual address space with named regions.
//!
//! Workload data structures allocate their backing addresses here so that
//! the emitted trace is deterministic run-to-run (the base address and the
//! bump-allocation order fully determine every address). The region registry
//! doubles as the ground truth used by the NDM oracle partitioner: the paper
//! identifies "contiguous range[s] of addresses that account for the bulk of
//! the memory references" from basic-block profiles; here the allocator
//! knows the true object extents directly.

/// Base virtual address of the first allocated region.
///
/// Chosen to be comfortably nonzero (catching zero-address bugs) and
/// 2 MiB-aligned so that page-granularity experiments see aligned regions.
pub const DEFAULT_BASE_ADDR: u64 = 0x1000_0000;

/// Every region start is aligned to this many bytes so that no cache line —
/// and no experiment page size up to this value — straddles two regions.
pub const REGION_ALIGN: u64 = 4096;

/// Identifier of a region within its [`AddressSpace`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The dense index of this region.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A contiguous, named range of the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Dense identifier, assigned in allocation order.
    pub id: RegionId,
    /// Human-readable name (the data structure it backs, e.g. `"csr.values"`).
    pub name: String,
    /// First byte address.
    pub start: u64,
    /// Length in bytes (the logical extent actually used by the container).
    pub len: u64,
}

impl Region {
    /// Exclusive end address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `addr` falls inside this region.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// A bump allocator over a simulated virtual address space.
///
/// Allocation never reuses addresses; regions are laid out in increasing
/// address order with [`REGION_ALIGN`] alignment and are recorded in a
/// registry queryable by id, name, or containing address.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next: u64,
    base: u64,
    regions: Vec<Region>,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// A fresh address space starting at [`DEFAULT_BASE_ADDR`].
    pub fn new() -> Self {
        Self::with_base(DEFAULT_BASE_ADDR)
    }

    /// A fresh address space starting at `base` (rounded up to
    /// [`REGION_ALIGN`]).
    pub fn with_base(base: u64) -> Self {
        let base = align_up(base, REGION_ALIGN);
        Self {
            next: base,
            base,
            regions: Vec::new(),
        }
    }

    /// Allocate `len` bytes as a new named region and return it.
    ///
    /// Zero-length requests still produce a (zero-length) region so that
    /// every container owns a registered id.
    pub fn alloc(&mut self, name: &str, len: u64) -> Region {
        let start = align_up(self.next, REGION_ALIGN);
        self.next = start + len;
        let region = Region {
            id: RegionId(self.regions.len() as u32),
            name: name.to_string(),
            start,
            len,
        };
        self.regions.push(region.clone());
        region
    }

    /// All regions in allocation (= address) order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Look a region up by id.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Look a region up by exact name (first match).
    pub fn region_by_name(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// The region containing `addr`, if any.
    ///
    /// Regions are address-ordered, so this is a binary search.
    pub fn region_of(&self, addr: u64) -> Option<&Region> {
        let idx = self.regions.partition_point(|r| r.start <= addr);
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        r.contains(addr).then_some(r)
    }

    /// Total bytes allocated (the memory footprint), excluding alignment gaps.
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.len).sum()
    }

    /// Bytes spanned from the base address to the allocation high-water mark
    /// (includes alignment gaps). This is the extent a physical memory of the
    /// design must cover.
    pub fn extent_bytes(&self) -> u64 {
        self.next - self.base
    }

    /// The base address of the space.
    pub fn base(&self) -> u64 {
        self.base
    }
}

#[inline]
fn align_up(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_is_aligned_and_ordered() {
        let mut s = AddressSpace::new();
        let a = s.alloc("a", 100);
        let b = s.alloc("b", 5000);
        let c = s.alloc("c", 1);
        assert_eq!(a.start % REGION_ALIGN, 0);
        assert_eq!(b.start % REGION_ALIGN, 0);
        assert_eq!(c.start % REGION_ALIGN, 0);
        assert!(a.end() <= b.start);
        assert!(b.end() <= c.start);
        assert_eq!(a.id, RegionId(0));
        assert_eq!(c.id, RegionId(2));
    }

    #[test]
    fn lookup_by_name_and_addr() {
        let mut s = AddressSpace::new();
        let a = s.alloc("alpha", 4096);
        let b = s.alloc("beta", 8192);
        assert_eq!(s.region_by_name("alpha").unwrap().id, a.id);
        assert_eq!(s.region_by_name("beta").unwrap().id, b.id);
        assert!(s.region_by_name("gamma").is_none());

        assert_eq!(s.region_of(a.start).unwrap().id, a.id);
        assert_eq!(s.region_of(a.end() - 1).unwrap().id, a.id);
        assert_eq!(s.region_of(b.start + 17).unwrap().id, b.id);
        assert!(s.region_of(0).is_none());
        assert!(s.region_of(b.end()).is_none());
    }

    #[test]
    fn footprint_and_extent() {
        let mut s = AddressSpace::new();
        s.alloc("a", 100);
        s.alloc("b", 200);
        assert_eq!(s.footprint_bytes(), 300);
        // extent includes the alignment padding between the 100-byte region
        // and the next 4 KiB boundary
        assert_eq!(s.extent_bytes(), REGION_ALIGN + 200);
    }

    #[test]
    fn deterministic_layout() {
        let mk = || {
            let mut s = AddressSpace::new();
            (s.alloc("x", 12345).start, s.alloc("y", 678).start)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn zero_length_region_registered() {
        let mut s = AddressSpace::new();
        let z = s.alloc("z", 0);
        assert_eq!(z.len, 0);
        assert_eq!(s.regions().len(), 1);
        assert!(!z.contains(z.start));
    }

    proptest! {
        /// Regions never overlap, regardless of the allocation sizes.
        #[test]
        fn regions_never_overlap(lens in proptest::collection::vec(0u64..100_000, 1..40)) {
            let mut s = AddressSpace::new();
            for (i, len) in lens.iter().enumerate() {
                s.alloc(&format!("r{i}"), *len);
            }
            let rs = s.regions();
            for w in rs.windows(2) {
                prop_assert!(w[0].end() <= w[1].start);
            }
        }

        /// `region_of` agrees with a linear scan for arbitrary probe addresses.
        #[test]
        fn region_of_matches_linear_scan(
            lens in proptest::collection::vec(1u64..50_000, 1..20),
            probes in proptest::collection::vec(0u64..0x2000_0000, 50),
        ) {
            let mut s = AddressSpace::new();
            for (i, len) in lens.iter().enumerate() {
                s.alloc(&format!("r{i}"), *len);
            }
            for p in probes {
                let fast = s.region_of(p).map(|r| r.id);
                let slow = s.regions().iter().find(|r| r.contains(p)).map(|r| r.id);
                prop_assert_eq!(fast, slow);
            }
        }
    }
}
