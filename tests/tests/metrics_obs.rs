//! Observability acceptance tests.
//!
//! The contract under test: counters the registry exports under a run's
//! prefix are **bit-identical** to the final report's `LevelStats` (the
//! epoch-published values are overwritten by an exact final publish), and
//! the deterministic JSON export is byte-stable across identical runs.
//!
//! Every test takes `memsim_obs::test_lock()` — the registry and span
//! tree are process-global, so obs tests must not interleave.

use memsim_core::{evaluate, Design, Scale, Structure};
use memsim_workloads::{Class, WorkloadKind};
use std::path::PathBuf;

fn counter(name: &str) -> u64 {
    memsim_obs::global()
        .counter_value(name)
        .unwrap_or_else(|| panic!("counter '{name}' not registered"))
}

/// Assert all ten exported per-level counters equal the final stats.
fn assert_level_matches(prefix: &str, s: &memsim_cache::LevelStats) {
    for (field, v) in [
        ("loads", s.loads),
        ("stores", s.stores),
        ("load_hits", s.load_hits),
        ("load_misses", s.load_misses),
        ("store_hits", s.store_hits),
        ("store_misses", s.store_misses),
        ("writebacks_out", s.writebacks_out),
        ("fills", s.fills),
        ("bytes_loaded", s.bytes_loaded),
        ("bytes_stored", s.bytes_stored),
    ] {
        assert_eq!(
            counter(&format!("{prefix}.{}.{field}", s.name)),
            v,
            "{prefix}.{}.{field} diverges from the final LevelStats",
            s.name
        );
    }
}

fn temp_trace(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("memsim-obs-itest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn live_run_registry_counters_match_final_level_stats() {
    let _lock = memsim_obs::test_lock();
    memsim_obs::reset();
    memsim_obs::set_enabled(true);
    let res = evaluate(WorkloadKind::Hash, &Scale::mini(), &Design::Baseline);
    memsim_obs::set_enabled(false);

    let prefix = format!("sim.{}.3L", WorkloadKind::Hash.name());
    for s in res.run.all_levels() {
        assert_level_matches(&prefix, s);
    }
    assert_eq!(counter("progress.events"), res.run.total_refs);
}

#[test]
fn replay_export_json_is_bit_identical_to_level_stats() {
    let _lock = memsim_obs::test_lock();
    let scale = Scale::mini();
    let path = temp_trace("hash-export.trace");
    memsim_core::record_workload(WorkloadKind::Hash, Class::Mini, &path).unwrap();

    memsim_obs::reset();
    memsim_obs::set_enabled(true);
    let run = memsim_core::replay_structure(&path, &scale, &Structure::ThreeLevel).unwrap();
    memsim_obs::set_enabled(false);

    // the acceptance criterion: the values in the exported JSON document
    // (what `--metrics-out` writes) equal the final report's LevelStats,
    // digit for digit
    let doc = memsim_obs::export_json(&[("command", "replay".to_string())], memsim_obs::global());
    for s in run.all_levels() {
        assert_level_matches("replay.3L", s);
        for (field, v) in [
            ("load_hits", s.load_hits),
            ("load_misses", s.load_misses),
            ("writebacks_out", s.writebacks_out),
        ] {
            let needle = format!("\"replay.3L.{}.{field}\":{v}", s.name);
            assert!(doc.contains(&needle), "export is missing `{needle}`");
        }
    }

    // trace-health counters: every chunk that reached the sink passed CRC
    let chunks = counter("replay.3L.reader.chunks");
    assert!(chunks > 0);
    assert_eq!(counter("replay.3L.reader.crc_verified_chunks"), chunks);
    assert!(counter("replay.3L.reader.payload_bytes") > 0);
    assert_eq!(counter("progress.events"), run.total_refs);

    std::fs::remove_file(&path).ok();
}

#[test]
fn deterministic_export_is_byte_stable_across_identical_runs() {
    let _lock = memsim_obs::test_lock();
    let scale = Scale::mini();
    let manifest = [
        ("command", "run".to_string()),
        ("workload", "cg".to_string()),
    ];
    let mut docs = Vec::new();
    for _ in 0..2 {
        memsim_obs::reset();
        memsim_obs::set_enabled(true);
        memsim_obs::set_deterministic(true);
        let _ = evaluate(WorkloadKind::Cg, &scale, &Design::Baseline);
        memsim_obs::set_enabled(false);
        docs.push(memsim_obs::export_json(&manifest, memsim_obs::global()));
    }
    memsim_obs::set_deterministic(false);

    assert_eq!(docs[0], docs[1], "deterministic export is not byte-stable");
    assert!(docs[0].starts_with("{\"schema\":\"memsim-obs/1\""));
    // wall times are zeroed in deterministic mode, so the only u64s left
    // are simulation counts — identical runs, identical bytes
    assert!(docs[0].contains("\"wall_ns\":0"));
}
