//! Shared support for the benchmark harness.
//!
//! Every bench target regenerates one table or figure of the paper — it
//! prints the reproduced series (markdown) before running its Criterion
//! measurement, so `cargo bench` output doubles as the reproduction log.
//!
//! Environment knobs:
//!
//! * `MEMSIM_BENCH_SCALE` — `mini` (default; smoke-sized) or `demo`
//!   (the scale EXPERIMENTS.md numbers are reported at) or `paper`.
//! * `MEMSIM_BENCH_WORKLOADS` — comma-separated subset; defaults to the
//!   full Table 4 set at demo/paper scale and a fast trio at mini scale.

use memsim_core::experiments::ExperimentCtx;
use memsim_core::report::FigureData;
use memsim_core::{Scale, SimCache};
use memsim_workloads::WorkloadKind;

/// The scale selected via `MEMSIM_BENCH_SCALE`.
pub fn bench_scale() -> Scale {
    match std::env::var("MEMSIM_BENCH_SCALE").as_deref() {
        Ok("demo") => Scale::demo(),
        Ok("paper") => Scale::paper(),
        _ => Scale::mini(),
    }
}

/// The workload set selected via `MEMSIM_BENCH_WORKLOADS` (or a
/// scale-appropriate default).
pub fn bench_workloads(scale: &Scale) -> Vec<WorkloadKind> {
    if let Ok(list) = std::env::var("MEMSIM_BENCH_WORKLOADS") {
        return list
            .split(',')
            .map(|w| WorkloadKind::parse(w).unwrap_or_else(|| panic!("unknown workload '{w}'")))
            .collect();
    }
    if *scale == Scale::mini() {
        vec![WorkloadKind::Cg, WorkloadKind::Hash, WorkloadKind::Graph500]
    } else {
        WorkloadKind::PAPER_SET.to_vec()
    }
}

/// Build the experiment context for the selected scale/workloads.
pub fn bench_ctx(cache: &SimCache) -> ExperimentCtx<'_> {
    let scale = bench_scale();
    let workloads = bench_workloads(&scale);
    ExperimentCtx::new(scale, cache).with_workloads(&workloads)
}

/// Print a regenerated figure with a banner.
pub fn print_figure(f: &FigureData) {
    println!(
        "\n==================== reproduced {} ====================",
        f.id
    );
    println!("{}", f.to_markdown());
    println!("========================================================\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_resolve() {
        let s = bench_scale();
        let w = bench_workloads(&s);
        assert!(!w.is_empty());
    }
}
