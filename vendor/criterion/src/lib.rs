//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the criterion API its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`Throughput::Elements`], `Bencher::iter`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Behaviour matches the real harness where it matters to cargo:
//! `cargo bench` passes `--bench` and gets a full warm-up + sampled
//! measurement (median ns/iter plus derived throughput); `cargo test`
//! runs each benchmark body exactly once as a smoke test. Any bare
//! (non-`-`-prefixed) CLI argument acts as a substring filter on
//! benchmark ids. Each measurement is also emitted as a single
//! `BENCHLINE {...}` JSON object on stdout so scripts can scrape results
//! without parsing the human-readable report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How many units of work one `iter` call represents, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `iter` processes this many logical elements (reported as elem/s).
    Elements(u64),
    /// `iter` processes this many bytes (reported as B/s).
    Bytes(u64),
}

/// The measurement harness: holds CLI mode/filter and sampling parameters.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                bench_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Self {
            sample_size: 100,
            bench_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run a single benchmark under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, None, &mut f);
        self
    }

    /// Open a named group; benchmark ids become `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            bench_mode: self.bench_mode,
            sample_size: self.sample_size,
            median_ns: None,
        };
        f(&mut bencher);
        if !self.bench_mode {
            println!("test {id} ... ok (smoke)");
            return;
        }
        let median_ns = bencher
            .median_ns
            .expect("benchmark closure never called Bencher::iter");
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => (n as f64 * 1e9 / median_ns, "elem/s"),
            Throughput::Bytes(n) => (n as f64 * 1e9 / median_ns, "B/s"),
        });
        match rate {
            Some((per_sec, unit)) => {
                println!("{id:<40} time: {median_ns:>12.1} ns/iter  thrpt: {per_sec:>14.0} {unit}");
                println!(
                    "BENCHLINE {{\"id\":\"{id}\",\"median_ns\":{median_ns:.1},\"rate\":{per_sec:.1},\"rate_unit\":\"{unit}\"}}"
                );
            }
            None => {
                println!("{id:<40} time: {median_ns:>12.1} ns/iter");
                println!("BENCHLINE {{\"id\":\"{id}\",\"median_ns\":{median_ns:.1}}}");
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the work per `iter` call for every following benchmark.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let throughput = self.throughput;
        self.criterion.run_one(&id, throughput, &mut f);
        self
    }

    /// Close the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Measure `f`. In test mode runs it once; in bench mode warms up,
    /// then times `sample_size` samples and records the median ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.bench_mode {
            std::hint::black_box(f());
            return;
        }
        // Warm-up: double the iteration count until a batch takes >= 25 ms,
        // which also gives the per-iteration estimate for sample sizing.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(25) || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 2;
        };
        // Aim for ~10 ms per sample, at least one iteration.
        let iters_per_sample = ((10_000_000.0 / per_iter_ns).ceil() as u64).max(1);
        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN sample"));
        let mid = samples.len() / 2;
        let median = if samples.len().is_multiple_of(2) {
            (samples[mid - 1] + samples[mid]) / 2.0
        } else {
            samples[mid]
        };
        self.median_ns = Some(median);
    }
}

/// Bundle benchmark functions into a named runner, optionally with a
/// configured [`Criterion`] (mirrors the real crate's two macro forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_criterion() -> Criterion {
        // Constructed directly so unit tests are independent of CLI args.
        Criterion {
            sample_size: 3,
            bench_mode: true,
            filter: None,
        }
    }

    #[test]
    fn measures_and_records_median() {
        let mut c = test_criterion();
        let mut ran = false;
        c.bench_function("unit/spin", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_prefixes_and_filter() {
        let mut c = Criterion {
            filter: Some("never_matches".into()),
            ..test_criterion()
        };
        let mut ran = false;
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function("case", |_| ran = true);
        g.finish();
        assert!(!ran, "filtered benchmark must not run");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion {
            bench_mode: false,
            ..test_criterion()
        };
        let mut count = 0u32;
        c.bench_function("unit/once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }
}
