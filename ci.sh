#!/usr/bin/env bash
# Offline lint gate: formatting + clippy with warnings denied.
# Mirrors what CI runs; everything resolves from the vendored deps, so no
# network access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tracefile round-trip property tests"
cargo test -p memsim-tracefile --offline -q

echo "== record -> replay smoke (CLI)"
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release --offline -q -p memsim-cli -- record hash -o "$smoke_dir/hash.trace" --scale mini
cargo run --release --offline -q -p memsim-cli -- trace-info "$smoke_dir/hash.trace"
cargo run --release --offline -q -p memsim-cli -- replay "$smoke_dir/hash.trace" --designs baseline,nmm

echo "ci.sh: all checks passed"
