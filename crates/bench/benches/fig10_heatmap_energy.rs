//! Figure 10: heat map of normalized NMM energy as a function of read and
//! write energy multipliers (1×–20× over DRAM).
//!
//! Prints the reproduced grid, reports the break-even frontier (the paper
//! finds up to ~9× write / ~2× read energy still at or below DRAM), and
//! Criterion-measures the analytic sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::bench_ctx;
use memsim_core::experiments::fig10;
use memsim_core::report::heatmap_to_markdown;
use memsim_core::SimCache;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cache = SimCache::new();
    let ctx = bench_ctx(&cache);
    let h = fig10(&ctx).unwrap();
    println!("\n==================== reproduced fig10 ====================");
    println!("{}", heatmap_to_markdown(&h));
    // break-even frontier: the largest multiplier on one axis (other held
    // at 1x) whose energy stays at or below the DRAM baseline
    let frontier = |along_write: bool| {
        let mults = if along_write {
            &h.write_mults
        } else {
            &h.read_mults
        };
        let mut best = None;
        for (i, m) in mults.iter().enumerate() {
            let v = if along_write { h.at(0, i) } else { h.at(i, 0) };
            if v <= 1.0 {
                best = Some(*m);
            }
        }
        best
    };
    println!(
        "break-even: write-energy x{:?} at read x1; read-energy x{:?} at write x1 (paper: ~9x write / ~2x read)",
        frontier(true),
        frontier(false)
    );
    println!("===========================================================\n");
    c.bench_function("fig10_heatmap_energy/sweep", |b| {
        b.iter(|| black_box(fig10(&ctx)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
