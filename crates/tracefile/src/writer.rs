//! Recording: a [`TraceSink`] that persists the stream it consumes.

use crate::crc32::crc32;
use crate::format::{TraceError, TraceHeader, TRACE_CHUNK_EVENTS};
use crate::varint;
use memsim_obs::Counter;
use memsim_trace::{TraceEvent, TraceSink};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

/// Streams [`TraceEvent`]s to a writer in the chunked delta-varint format.
///
/// Implements [`TraceSink`], so recording a workload is just running it
/// with the writer as its sink (or behind a `TeeSink` to record and
/// simulate in one pass). Events are buffered into chunks of
/// [`TRACE_CHUNK_EVENTS`] and framed with a count and CRC32; a sequential
/// 8-byte stream encodes to ≈2 bytes per event.
///
/// [`TraceSink::access`] cannot return errors, so an I/O failure mid-stream
/// is stashed and the writer goes quiet; [`TraceWriter::finish`] reports
/// it. A writer dropped without `finish` leaves a file with no footer,
/// which readers reject as [`TraceError::MissingFooter`] — a half-written
/// recording can never be mistaken for a complete one.
pub struct TraceWriter<W: Write> {
    out: W,
    pending: Vec<TraceEvent>,
    payload: Vec<u8>,
    total_events: u64,
    chunks: u64,
    error: Option<io::Error>,
    finished: bool,
    /// Observability hook: `(events, chunks)` counters advanced once per
    /// emitted chunk (never per event).
    probe: Option<(Arc<Counter>, Arc<Counter>)>,
}

impl TraceWriter<BufWriter<File>> {
    /// Create (truncating) `path` and write `header` to it.
    pub fn create(path: &Path, header: &TraceHeader) -> Result<Self, TraceError> {
        Self::new(BufWriter::new(File::create(path)?), header)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wrap `out`, writing `header` immediately.
    pub fn new(mut out: W, header: &TraceHeader) -> Result<Self, TraceError> {
        header.write_to(&mut out)?;
        Ok(Self {
            out,
            pending: Vec::with_capacity(TRACE_CHUNK_EVENTS),
            payload: Vec::with_capacity(TRACE_CHUNK_EVENTS * 3),
            total_events: 0,
            chunks: 0,
            error: None,
            finished: false,
            probe: None,
        })
    }

    /// Attach live-progress counters: `events` is advanced by each emitted
    /// chunk's event count and `chunks` by one, at chunk granularity, so
    /// recording progress is observable without touching the per-event
    /// path.
    pub fn set_probe(&mut self, events: Arc<Counter>, chunks: Arc<Counter>) {
        self.probe = Some((events, chunks));
    }

    /// Events accepted so far (including any still buffered).
    pub fn events_written(&self) -> u64 {
        self.total_events + self.pending.len() as u64
    }

    /// Chunks emitted so far.
    pub fn chunks_written(&self) -> u64 {
        self.chunks
    }

    /// Encode and frame the pending events as one chunk.
    fn write_pending_chunk(&mut self) {
        if self.pending.is_empty() || self.error.is_some() {
            // on a stashed error, drop the events: the file is already
            // doomed and finish() will report the failure
            self.pending.clear();
            return;
        }
        self.payload.clear();
        let first_addr = self.pending[0].addr;
        let mut prev = first_addr;
        for ev in &self.pending {
            varint::write_u64(
                &mut self.payload,
                varint::zigzag(ev.addr.wrapping_sub(prev) as i64),
            );
            varint::write_u64(
                &mut self.payload,
                (u64::from(ev.size) << 1) | u64::from(ev.kind.is_store()),
            );
            prev = ev.addr;
        }
        let count = self.pending.len() as u32;
        let result = (|| -> io::Result<()> {
            self.out.write_all(&count.to_le_bytes())?;
            self.out
                .write_all(&(self.payload.len() as u32).to_le_bytes())?;
            self.out.write_all(&first_addr.to_le_bytes())?;
            self.out.write_all(&crc32(&self.payload).to_le_bytes())?;
            self.out.write_all(&self.payload)
        })();
        if let Err(e) = result {
            self.error = Some(e);
        } else {
            self.total_events += u64::from(count);
            self.chunks += 1;
            if let Some((events, chunks)) = &self.probe {
                events.add(u64::from(count));
                chunks.inc();
            }
        }
        self.pending.clear();
    }

    /// Drain buffered events, write the footer, and flush the underlying
    /// writer. Returns the writer and the total event count. Any I/O error
    /// stashed during the stream (or hit here) is reported.
    pub fn finish(mut self) -> Result<(W, u64), TraceError> {
        self.write_pending_chunk();
        if let Some(e) = self.error.take() {
            return Err(TraceError::Io(e));
        }
        self.out.write_all(&0u32.to_le_bytes())?;
        let total = self.total_events.to_le_bytes();
        self.out.write_all(&total)?;
        self.out.write_all(&crc32(&total).to_le_bytes())?;
        self.out.flush()?;
        self.finished = true;
        Ok((self.out, self.total_events))
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        self.pending.push(ev);
        if self.pending.len() == TRACE_CHUNK_EVENTS {
            self.write_pending_chunk();
        }
    }

    fn access_chunk(&mut self, events: &[TraceEvent]) {
        for &ev in events {
            self.access(ev);
        }
    }

    /// Drain the buffered partial chunk to the stream (no footer — the
    /// recording can continue; call [`TraceWriter::finish`] to close it).
    fn flush(&mut self) {
        self.write_pending_chunk();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FORMAT_VERSION;

    #[test]
    fn empty_trace_is_header_plus_footer() {
        let header = TraceHeader::anonymous(0);
        let w = TraceWriter::new(Vec::new(), &header).unwrap();
        let (buf, total) = w.finish().unwrap();
        assert_eq!(total, 0);
        // magic + version + body_len + body(8 + 2 + 2 + 4) + crc + footer(16)
        assert_eq!(buf.len(), 8 + 4 + 4 + 16 + 4 + 16);
        assert_eq!(&buf[..8], b"MSIMTRC1");
        assert_eq!(
            u32::from_le_bytes(buf[8..12].try_into().unwrap()),
            FORMAT_VERSION
        );
    }

    #[test]
    fn sequential_stream_encodes_under_four_bytes_per_event() {
        let header = TraceHeader::anonymous(0x1000_0000);
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
        const N: u64 = 100_000;
        for i in 0..N {
            // a unit-stride sweep with a store every 4th reference — the
            // shape the acceptance criterion targets
            let ev = if i % 4 == 3 {
                TraceEvent::store(0x1000_0000 + i * 8, 8)
            } else {
                TraceEvent::load(0x1000_0000 + i * 8, 8)
            };
            w.access(ev);
        }
        let (buf, total) = w.finish().unwrap();
        assert_eq!(total, N);
        let per_event = buf.len() as f64 / N as f64;
        assert!(
            per_event <= 4.0,
            "sequential stream encoded at {per_event:.2} bytes/event"
        );
        // the two varints are one byte each here, so it should be ~2
        assert!(per_event < 2.2, "expected ≈2 B/event, got {per_event:.2}");
    }

    #[test]
    fn flush_emits_partial_chunk_without_footer() {
        let header = TraceHeader::anonymous(0);
        let mut w = TraceWriter::new(Vec::new(), &header).unwrap();
        w.access(TraceEvent::load(64, 8));
        assert_eq!(w.chunks_written(), 0, "partial chunk still buffered");
        w.flush();
        assert_eq!(w.chunks_written(), 1);
        assert_eq!(w.events_written(), 1);
        let (_, total) = w.finish().unwrap();
        assert_eq!(total, 1);
    }

    #[test]
    fn io_error_is_stashed_and_reported_at_finish() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 < buf.len() {
                    return Err(io::Error::other("disk full"));
                }
                self.0 -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // enough budget for the header, not for any chunk
        let header = TraceHeader::anonymous(0);
        let mut w = TraceWriter::new(FailAfter(64), &header).unwrap();
        for i in 0..10_000u64 {
            w.access(TraceEvent::load(i * 8, 8));
        }
        assert!(matches!(w.finish(), Err(TraceError::Io(_))));
    }
}
