//! Flight recorder: per-thread bounded ring buffers of timestamped
//! structured events, drained into timeline exports.
//!
//! Each thread that records gets its own ring, registered once in a
//! process-global list; after registration the hot path touches only the
//! thread's own ring, whose mutex is uncontended except at drain time, so
//! a record is one relaxed load (the armed check), one uncontended lock,
//! and one `VecDeque` push. When the ring is full the oldest event is
//! overwritten and counted in [`Lane::dropped`] — recording never blocks
//! and never grows without bound.
//!
//! Events carry the recording thread's name as their *lane*: shard
//! workers (`memsim-shard0`, ...) each get their own timeline lane in the
//! Chrome-trace export. Successive threads with the same name (for
//! example, shard workers re-spawned per sweep point) append to the same
//! lane in registration order.
//!
//! # Determinism
//!
//! With [`crate::set_deterministic`] on, timestamps are per-ring sequence
//! numbers (renumbered per lane at drain) instead of wall micros, and
//! counter *values* are recorded as zero — the same trade the metrics
//! export makes with span wall times — so two identical runs drain to
//! byte-identical exports.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a recorded event marks on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (Chrome-trace `ph:"B"`).
    SpanBegin,
    /// A span closed (Chrome-trace `ph:"E"`).
    SpanEnd,
    /// A point-in-time marker (Chrome-trace `ph:"i"`).
    Instant,
    /// A counter-track sample (Chrome-trace `ph:"C"`).
    Counter,
}

/// One timestamped event in a ring.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// Microseconds since the recording session started (deterministic
    /// mode: a per-lane sequence number).
    pub ts_us: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Event name (dotted span name, counter track name, ...).
    pub name: String,
    /// Counter value (zero for non-counter events, and zeroed in
    /// deterministic mode).
    pub value: f64,
}

/// All events recorded under one lane (thread name), in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Lane name: the recording thread's name, or `thread<n>` for
    /// unnamed threads (`n` is the ring registration index).
    pub name: String,
    /// Events in timestamp order.
    pub events: Vec<RecordedEvent>,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
}

/// Default per-thread ring capacity, in events.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

struct RingData {
    events: VecDeque<RecordedEvent>,
    dropped: u64,
    next_seq: u64,
}

struct Ring {
    lane: String,
    data: Mutex<RingData>,
}

impl Ring {
    fn push(&self, capacity: usize, kind: EventKind, name: &str, value: f64, epoch: Instant) {
        let deterministic = crate::deterministic();
        let mut data = self.data.lock().unwrap_or_else(|e| e.into_inner());
        let ts_us = if deterministic {
            let s = data.next_seq;
            data.next_seq += 1;
            s
        } else {
            u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
        };
        if data.events.len() >= capacity.max(1) {
            data.events.pop_front();
            data.dropped += 1;
        }
        data.events.push_back(RecordedEvent {
            ts_us,
            kind,
            name: name.to_string(),
            value: if deterministic { 0.0 } else { value },
        });
    }
}

struct Recorder {
    rings: Vec<Arc<Ring>>,
    epoch: Instant,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static SESSION: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

thread_local! {
    static LOCAL: RefCell<Option<LocalRing>> = const { RefCell::new(None) };
}

struct LocalRing {
    session: u64,
    ring: Arc<Ring>,
    epoch: Instant,
}

/// Is the flight recorder armed? One relaxed load — the hot-path guard.
#[inline]
pub fn recording() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm the recorder with fresh, empty rings of `capacity` events per
/// thread (0 means [`DEFAULT_CAPACITY`]). Any previous recording is
/// discarded.
pub fn start(capacity: usize) {
    let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    let cap = if capacity == 0 {
        DEFAULT_CAPACITY
    } else {
        capacity
    };
    CAPACITY.store(cap, Ordering::Relaxed);
    SESSION.fetch_add(1, Ordering::Relaxed);
    *rec = Some(Recorder {
        rings: Vec::new(),
        epoch: Instant::now(),
    });
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm the recorder and return everything recorded, grouped into
/// lanes. Rings from same-named threads are appended in registration
/// order; lanes come out name-sorted. In deterministic mode, timestamps
/// are renumbered 0.. per lane so the result is run-stable.
pub fn stop_and_drain() -> Vec<Lane> {
    ARMED.store(false, Ordering::Relaxed);
    let taken = {
        let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
        rec.take()
    };
    match taken {
        Some(r) => collect(&r.rings, usize::MAX),
        None => Vec::new(),
    }
}

/// A non-destructive copy of the most recent `tail` events of every lane
/// (the post-mortem dump used on panic / SIGUSR1). Recording continues.
pub fn snapshot_tail(tail: usize) -> Vec<Lane> {
    let rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
    match rec.as_ref() {
        Some(r) => collect(&r.rings, tail),
        None => Vec::new(),
    }
}

fn collect(rings: &[Arc<Ring>], tail: usize) -> Vec<Lane> {
    let deterministic = crate::deterministic();
    let mut lanes: Vec<Lane> = Vec::new();
    for ring in rings {
        let data = ring.data.lock().unwrap_or_else(|e| e.into_inner());
        let skip = data.events.len().saturating_sub(tail);
        let events = data.events.iter().skip(skip).cloned();
        match lanes.iter_mut().find(|l| l.name == ring.lane) {
            Some(lane) => {
                lane.events.extend(events);
                lane.dropped += data.dropped;
            }
            None => lanes.push(Lane {
                name: ring.lane.clone(),
                events: events.collect(),
                dropped: data.dropped,
            }),
        }
    }
    lanes.sort_by(|a, b| a.name.cmp(&b.name));
    for lane in &mut lanes {
        if deterministic {
            for (i, ev) in lane.events.iter_mut().enumerate() {
                ev.ts_us = i as u64;
            }
        } else {
            lane.events.sort_by_key(|e| e.ts_us);
        }
    }
    lanes
}

fn with_ring(f: impl FnOnce(&Ring, usize, Instant)) {
    let session = SESSION.load(Ordering::Relaxed);
    LOCAL.with(|l| {
        let mut local = l.borrow_mut();
        let stale = match local.as_ref() {
            Some(lr) => lr.session != session,
            None => true,
        };
        if stale {
            let mut rec = RECORDER.lock().unwrap_or_else(|e| e.into_inner());
            let Some(r) = rec.as_mut() else {
                return; // disarmed between the guard check and here
            };
            let lane = match std::thread::current().name() {
                Some(n) => n.to_string(),
                None => format!("thread{}", r.rings.len()),
            };
            let ring = Arc::new(Ring {
                lane,
                data: Mutex::new(RingData {
                    events: VecDeque::new(),
                    dropped: 0,
                    next_seq: 0,
                }),
            });
            r.rings.push(Arc::clone(&ring));
            *local = Some(LocalRing {
                session,
                ring,
                epoch: r.epoch,
            });
        }
        if let Some(lr) = local.as_ref() {
            f(&lr.ring, CAPACITY.load(Ordering::Relaxed), lr.epoch);
        }
    });
}

#[inline]
fn record(kind: EventKind, name: &str, value: f64) {
    if !recording() {
        return;
    }
    with_ring(|ring, cap, epoch| ring.push(cap, kind, name, value, epoch));
}

/// Record a span-begin event on the calling thread's lane.
#[inline]
pub fn span_begin(name: &str) {
    record(EventKind::SpanBegin, name, 0.0);
}

/// Record a span-end event on the calling thread's lane.
#[inline]
pub fn span_end(name: &str) {
    record(EventKind::SpanEnd, name, 0.0);
}

/// Record a point-in-time marker on the calling thread's lane.
#[inline]
pub fn instant(name: &str) {
    record(EventKind::Instant, name, 0.0);
}

/// Record a counter-track sample on the calling thread's lane. The value
/// is recorded as zero in deterministic mode (see module docs).
#[inline]
pub fn counter(name: &str, value: f64) {
    record(EventKind::Counter, name, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_recording_is_a_no_op() {
        let _lock = crate::test_lock();
        assert!(!recording());
        instant("ghost");
        counter("ghost", 1.0);
        assert!(stop_and_drain().is_empty());
    }

    #[test]
    fn ring_wraps_at_capacity_and_counts_drops() {
        let _lock = crate::test_lock();
        start(4);
        for i in 0..10 {
            counter("c", i as f64);
        }
        let lanes = stop_and_drain();
        assert_eq!(lanes.len(), 1);
        let lane = &lanes[0];
        assert_eq!(lane.events.len(), 4);
        assert_eq!(lane.dropped, 6);
        // The survivors are the newest four samples.
        let values: Vec<f64> = lane.events.iter().map(|e| e.value).collect();
        assert_eq!(values, [6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn deterministic_mode_sequences_timestamps_and_zeroes_values() {
        let _lock = crate::test_lock();
        crate::set_deterministic(true);
        start(16);
        span_begin("a");
        counter("q", 42.0);
        span_end("a");
        let lanes = stop_and_drain();
        crate::set_deterministic(false);
        assert_eq!(lanes.len(), 1);
        let ts: Vec<u64> = lanes[0].events.iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, [0, 1, 2]);
        assert_eq!(lanes[0].events[1].value, 0.0);
    }

    #[test]
    fn named_threads_become_lanes_and_sequential_same_name_threads_merge() {
        let _lock = crate::test_lock();
        crate::set_deterministic(true);
        start(64);
        for round in 0..2 {
            std::thread::Builder::new()
                .name("rec-worker".into())
                .spawn(move || {
                    instant(&format!("round{round}"));
                })
                .unwrap()
                .join()
                .unwrap();
        }
        instant("from-main");
        let mut lanes = stop_and_drain();
        crate::set_deterministic(false);
        // One lane for the repeated worker name, one for this thread.
        let worker = lanes
            .iter_mut()
            .find(|l| l.name == "rec-worker")
            .expect("worker lane");
        let names: Vec<&str> = worker.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["round0", "round1"]);
        assert_eq!(
            worker.events.iter().map(|e| e.ts_us).collect::<Vec<_>>(),
            [0, 1]
        );
    }

    #[test]
    fn snapshot_tail_keeps_recording_and_limits_events() {
        let _lock = crate::test_lock();
        start(64);
        for i in 0..8 {
            counter("c", i as f64);
        }
        let snap = snapshot_tail(3);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].events.len(), 3);
        assert!(recording());
        counter("c", 8.0);
        let lanes = stop_and_drain();
        assert_eq!(lanes[0].events.len(), 9);
    }

    #[test]
    fn restart_discards_the_previous_session() {
        let _lock = crate::test_lock();
        start(8);
        instant("old");
        start(8);
        instant("new");
        let lanes = stop_and_drain();
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].events.len(), 1);
        assert_eq!(lanes[0].events[0].name, "new");
    }
}
