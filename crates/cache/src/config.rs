//! Static configuration of one cache level.

use crate::policy::ReplacementPolicy;

/// Associativity of a cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Associativity {
    /// `n`-way set associative (`n >= 1`; `1` is direct-mapped).
    Ways(u32),
    /// Fully associative: one set spanning the whole capacity.
    Full,
}

/// What a cache does when a writeback arriving from the level above misses.
///
/// Demand stores always write-allocate (the paper's model); this policy only
/// governs *writebacks* of dirty blocks evicted by an upper level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritebackMissPolicy {
    /// Forward the writeback to the next level unchanged (no allocation).
    /// This is the default: dirty lines "eventually make their way to the
    /// main memory", as the paper describes.
    #[default]
    Bypass,
    /// Allocate the block here without fetching (valid because the incoming
    /// writeback supplies the whole upper-level block; any bytes of a larger
    /// local block not covered are treated as untouched).
    Allocate,
}

/// Full static configuration of a cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Display name (e.g. `"L1"`, `"eDRAM-L4"`, `"DRAM$"`).
    pub name: String,
    /// Total capacity in bytes. Must be a multiple of `block_bytes × ways`.
    pub capacity_bytes: u64,
    /// Block ("line" for SRAM levels, "page" for DRAM/eDRAM cache levels)
    /// size in bytes. Must be a power of two.
    pub block_bytes: u32,
    /// Associativity.
    pub associativity: Associativity,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
    /// Behaviour when a writeback from above misses.
    pub writeback_miss: WritebackMissPolicy,
    /// Dirty-data tracking granularity. `None` marks the whole block dirty
    /// on any store and writes the whole block back (SRAM line caches).
    /// `Some(s)` tracks dirtiness per `s`-byte sector and writes back only
    /// dirty sectors — how the paper's page-granularity DRAM/eDRAM caches
    /// behave, since its simulator tracks dirty cache *lines* and those are
    /// what "eventually make their way to the main memory".
    pub sector_bytes: Option<u32>,
}

impl CacheConfig {
    /// An LRU write-back cache with the given geometry.
    pub fn new(name: &str, capacity_bytes: u64, block_bytes: u32, ways: u32) -> Self {
        Self {
            name: name.to_string(),
            capacity_bytes,
            block_bytes,
            associativity: Associativity::Ways(ways),
            policy: ReplacementPolicy::Lru,
            writeback_miss: WritebackMissPolicy::Bypass,
            sector_bytes: None,
        }
    }

    /// A fully associative LRU cache.
    pub fn fully_associative(name: &str, capacity_bytes: u64, block_bytes: u32) -> Self {
        Self {
            name: name.to_string(),
            capacity_bytes,
            block_bytes,
            associativity: Associativity::Full,
            policy: ReplacementPolicy::Lru,
            writeback_miss: WritebackMissPolicy::Bypass,
            sector_bytes: None,
        }
    }

    /// Builder-style: set the replacement policy.
    pub fn with_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: set the writeback-miss policy.
    pub fn with_writeback_miss(mut self, wb: WritebackMissPolicy) -> Self {
        self.writeback_miss = wb;
        self
    }

    /// Builder-style: track dirtiness per `sector_bytes` sector (must be a
    /// power of two dividing the block size, with at most 64 sectors per
    /// block).
    pub fn with_sectors(mut self, sector_bytes: u32) -> Self {
        self.sector_bytes = Some(sector_bytes);
        self
    }

    /// Number of ways after resolving [`Associativity::Full`].
    pub fn resolved_ways(&self) -> u32 {
        match self.associativity {
            Associativity::Ways(w) => w,
            Associativity::Full => {
                (self.capacity_bytes / u64::from(self.block_bytes)).max(1) as u32
            }
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.block_bytes) * u64::from(self.resolved_ways()))
    }

    /// Validate the geometry, panicking with a descriptive message if it is
    /// inconsistent. Called by [`crate::Cache::new`].
    pub fn validate(&self) {
        assert!(
            self.block_bytes.is_power_of_two(),
            "{}: block size must be a power of two",
            self.name
        );
        assert!(
            self.capacity_bytes > 0,
            "{}: capacity must be positive",
            self.name
        );
        let ways = self.resolved_ways();
        assert!(ways >= 1, "{}: at least one way required", self.name);
        let way_bytes = u64::from(self.block_bytes) * u64::from(ways);
        assert!(
            self.capacity_bytes.is_multiple_of(way_bytes),
            "{}: capacity {} is not a multiple of block×ways = {}",
            self.name,
            self.capacity_bytes,
            way_bytes
        );
        let sets = self.sets();
        assert!(
            sets.is_power_of_two(),
            "{}: set count {} must be a power of two",
            self.name,
            sets
        );
        if let Some(s) = self.sector_bytes {
            assert!(
                s.is_power_of_two(),
                "{}: sector size must be a power of two",
                self.name
            );
            assert!(
                s <= self.block_bytes && self.block_bytes.is_multiple_of(s),
                "{}: sectors must divide the block size",
                self.name
            );
            assert!(
                self.block_bytes / s <= 64,
                "{}: at most 64 sectors per block",
                self.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_geometry() {
        let c = CacheConfig::new("L1", 32 * 1024, 64, 8);
        c.validate();
        assert_eq!(c.resolved_ways(), 8);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn fully_associative_geometry() {
        let c = CacheConfig::fully_associative("VC", 4096, 64);
        c.validate();
        assert_eq!(c.resolved_ways(), 64);
        assert_eq!(c.sets(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_block() {
        CacheConfig::new("bad", 4096, 48, 4).validate();
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_misaligned_capacity() {
        CacheConfig::new("bad", 1000, 64, 4).validate();
    }

    #[test]
    #[should_panic(expected = "must be a power of two")]
    fn rejects_non_pow2_sets() {
        // 3 sets of 64B × 1 way
        CacheConfig::new("bad", 192, 64, 1).validate();
    }

    #[test]
    fn builder_methods() {
        let c = CacheConfig::new("x", 4096, 64, 4)
            .with_policy(ReplacementPolicy::Fifo)
            .with_writeback_miss(WritebackMissPolicy::Allocate);
        assert_eq!(c.policy, ReplacementPolicy::Fifo);
        assert_eq!(c.writeback_miss, WritebackMissPolicy::Allocate);
    }

    #[test]
    fn paper_reference_caches_validate() {
        // the Sandy Bridge reference configuration of the paper
        CacheConfig::new("L1", 32 * 1024, 64, 8).validate();
        CacheConfig::new("L2", 256 * 1024, 64, 8).validate();
        CacheConfig::new("L3", 20 * 1024 * 1024, 64, 20).validate();
    }
}
