//! Simulator throughput: references per second through the full
//! hierarchy, on synthetic streams with controlled hit rates and on a real
//! workload stream. This is the cost of the "online simulation" the
//! paper's framework performs during application execution.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use memsim_bench::bench_scale;
use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy, ShardedHierarchy};
use memsim_trace::{ChunkBuffer, TraceEvent, TraceSink};
use memsim_tracefile::{replay_into, TraceHeader, TraceReader, TraceWriter};
use memsim_workloads::WorkloadKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn full_hierarchy(scale: &memsim_core::Scale) -> Hierarchy<CountingMemory> {
    let caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
        Cache::new(
            CacheConfig::new("L4", scale.scaled_capacity(512 << 20), 1024, 16).with_sectors(64),
        ),
    ];
    Hierarchy::new(caches, CountingMemory::default())
}

/// Interleaved min-of-N harness: every case runs one warmup pass, then the
/// rounds proceed round-robin across the cases so a host-frequency dip hits
/// all of them equally; each case keeps its best ns/event. Minima are what
/// `BENCH_throughput.json` records — robust to the throttling that swings
/// criterion medians on shared hosts.
const MIN_OF_N_EVENTS: u64 = 1_000_000;
const MIN_OF_N_ROUNDS: usize = 12;

/// One named measurement pass in the min-of-N harness.
type MinOfNCase<'a> = (&'a str, Box<dyn FnMut() + 'a>);

fn min_of_n_report(cases: &mut [MinOfNCase<'_>]) {
    for (_, pass) in cases.iter_mut() {
        pass();
    }
    let mut best = vec![f64::INFINITY; cases.len()];
    for _ in 0..MIN_OF_N_ROUNDS {
        for (i, (_, pass)) in cases.iter_mut().enumerate() {
            let t = Instant::now();
            pass();
            best[i] = best[i].min(t.elapsed().as_nanos() as f64 / MIN_OF_N_EVENTS as f64);
        }
    }
    for ((name, _), ns) in cases.iter().zip(&best) {
        println!(
            "SIM_THROUGHPUT {name}: {ns:.3} ns/ref, {:.1} Mrefs/s (min of {MIN_OF_N_ROUNDS} x {MIN_OF_N_EVENTS} events, interleaved)",
            1e3 / ns
        );
    }
}

/// The hit-heavy / streaming / random event streams shared by the criterion
/// cases and the min-of-N harness.
fn l1_hit_event(i: u64) -> TraceEvent {
    TraceEvent::load((i % 512) * 64, 8)
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    const N: u64 = 100_000;

    // --- interleaved min-of-N minima (primary numbers) ---
    {
        let mut h_l1 = full_hierarchy(&scale);
        let mut h_l1c = full_hierarchy(&scale);
        let mut h_str = full_hierarchy(&scale);
        let mut h_chk = full_hierarchy(&scale);
        let mut h_rnd = full_hierarchy(&scale);
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut pos_str, mut pos_chk) = (0u64, 0u64);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut sh_auto = ShardedHierarchy::new(
            full_hierarchy(&scale).levels().to_vec(),
            CountingMemory::default(),
            cores,
            None,
        );
        let mut sh_four = ShardedHierarchy::new(
            full_hierarchy(&scale).levels().to_vec(),
            CountingMemory::default(),
            4,
            None,
        );
        let sh_auto_label = format!("sharded{}_l1_hits", sh_auto.shards());
        let sh_four_label = format!("sharded{}_l1_hits", sh_four.shards());
        let mut cases: Vec<MinOfNCase<'_>> = vec![
            (
                "l1_hits",
                Box::new(|| {
                    for i in 0..MIN_OF_N_EVENTS {
                        h_l1.access(l1_hit_event(i));
                    }
                    black_box(h_l1.total_refs());
                }),
            ),
            (
                "l1_hits_chunked",
                Box::new(|| {
                    let sink: &mut dyn TraceSink = &mut h_l1c;
                    let mut buf = ChunkBuffer::new(sink);
                    for i in 0..MIN_OF_N_EVENTS {
                        buf.access(l1_hit_event(i));
                    }
                    buf.drain();
                }),
            ),
            (
                "streaming",
                Box::new(|| {
                    for _ in 0..MIN_OF_N_EVENTS {
                        h_str.access(TraceEvent::load(pos_str % (256 << 20), 8));
                        pos_str += 8;
                    }
                    black_box(h_str.total_refs());
                }),
            ),
            (
                "chunked_stream",
                Box::new(|| {
                    let sink: &mut dyn TraceSink = &mut h_chk;
                    let mut buf = ChunkBuffer::new(sink);
                    for _ in 0..MIN_OF_N_EVENTS {
                        buf.access(TraceEvent::load(pos_chk % (256 << 20), 8));
                        pos_chk += 8;
                    }
                    buf.drain();
                }),
            ),
            (
                "random",
                Box::new(|| {
                    for _ in 0..MIN_OF_N_EVENTS {
                        let addr = rng.random_range(0u64..(256 << 20)) & !7;
                        let ev = if rng.random_bool(0.3) {
                            TraceEvent::store(addr, 8)
                        } else {
                            TraceEvent::load(addr, 8)
                        };
                        h_rnd.access(ev);
                    }
                    black_box(h_rnd.total_refs());
                }),
            ),
            (
                &sh_auto_label,
                Box::new(|| {
                    for i in 0..MIN_OF_N_EVENTS {
                        sh_auto.access(l1_hit_event(i));
                    }
                }),
            ),
            (
                &sh_four_label,
                Box::new(|| {
                    for i in 0..MIN_OF_N_EVENTS {
                        sh_four.access(l1_hit_event(i));
                    }
                }),
            ),
        ];
        min_of_n_report(&mut cases);
        drop(cases);
        black_box(sh_auto.finish().total_refs);
        black_box(sh_four.finish().total_refs);
    }

    let mut g = c.benchmark_group("simulator_throughput");
    g.throughput(Throughput::Elements(N));

    // L1-resident stream: the simulator's fast path
    g.bench_function("l1_hits", |b| {
        let mut h = full_hierarchy(&scale);
        b.iter(|| {
            for i in 0..N {
                h.access(TraceEvent::load((i % 512) * 64, 8));
            }
            black_box(h.total_refs())
        })
    });

    // the same L1-resident stream delivered through the chunk API: the
    // batched tag-word probe consumes runs of single-block hits with the
    // per-event dispatch and outcome branching hoisted out of the loop
    g.bench_function("l1_hits_chunked", |b| {
        let mut h = full_hierarchy(&scale);
        b.iter(|| {
            {
                let sink: &mut dyn TraceSink = &mut h;
                let mut buf = ChunkBuffer::new(sink);
                for i in 0..N {
                    buf.access(l1_hit_event(i));
                }
                buf.drain();
            }
            black_box(h.total_refs())
        })
    });

    // the L1-resident stream through the set-sharded engine (one worker
    // per detected core): measures chunk fan-out + queue hand-off cost on
    // this host, and aggregate speedup where cores exist
    g.bench_function("sharded_l1_hits", |b| {
        let levels = full_hierarchy(&scale).levels().to_vec();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut sh = ShardedHierarchy::new(levels, CountingMemory::default(), cores, None);
        b.iter(|| {
            for i in 0..N {
                sh.access(l1_hit_event(i));
            }
        });
        black_box(sh.finish().total_refs);
    });

    // sequential sweep over a large range: every level fills steadily
    g.bench_function("streaming", |b| {
        let mut h = full_hierarchy(&scale);
        let mut pos = 0u64;
        b.iter(|| {
            for _ in 0..N {
                h.access(TraceEvent::load(pos % (256 << 20), 8));
                pos += 8;
            }
            black_box(h.total_refs())
        })
    });

    // uniform random over 256 MiB: the adversarial path (misses everywhere)
    g.bench_function("random", |b| {
        let mut h = full_hierarchy(&scale);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            for _ in 0..N {
                let addr = rng.random_range(0u64..(256 << 20)) & !7;
                let ev = if rng.random_bool(0.3) {
                    TraceEvent::store(addr, 8)
                } else {
                    TraceEvent::load(addr, 8)
                };
                h.access(ev);
            }
            black_box(h.total_refs())
        })
    });
    // the streaming sweep again, but emitted the way workloads do it:
    // buffered into fixed chunks and delivered through `&mut dyn TraceSink`
    // — one virtual `access_chunk` call per chunk instead of one per event
    g.bench_function("chunked_stream", |b| {
        let mut h = full_hierarchy(&scale);
        let mut pos = 0u64;
        b.iter(|| {
            {
                let sink: &mut dyn TraceSink = &mut h;
                let mut buf = ChunkBuffer::new(sink);
                for _ in 0..N {
                    buf.access(TraceEvent::load(pos % (256 << 20), 8));
                    pos += 8;
                }
                buf.drain();
            }
            black_box(h.total_refs())
        })
    });
    g.finish();

    // a real workload stream, end to end (construction + run)
    c.bench_function("simulator_throughput/cg_end_to_end", |b| {
        b.iter(|| {
            let mut w = WorkloadKind::Cg.build(memsim_workloads::Class::Mini);
            let mut h = full_hierarchy(&scale);
            w.run(&mut h);
            h.drain();
            black_box(h.total_refs())
        })
    });

    // the same CG stream replayed from a recorded trace instead of
    // regenerated: record once into memory, then measure pure decode and
    // decode+simulate — the per-point cost when a config sweep replays one
    // recording instead of re-running the workload at every grid point
    let (trace_buf, trace_events) = {
        let mut w = WorkloadKind::Cg.build(memsim_workloads::Class::Mini);
        let header = TraceHeader::for_space(w.space(), "CG", "mini");
        let mut writer = TraceWriter::new(Vec::new(), &header).expect("in-memory writer");
        w.run(&mut writer);
        writer.finish().expect("finish in-memory trace")
    };
    let mut g = c.benchmark_group("replay_throughput");
    g.throughput(Throughput::Elements(trace_events));
    g.bench_function("decode_only", |b| {
        b.iter(|| {
            let mut r = TraceReader::new(trace_buf.as_slice()).unwrap();
            let mut n = 0u64;
            while let Some(chunk) = r.next_chunk().unwrap() {
                n += chunk.len() as u64;
            }
            black_box(n)
        })
    });
    g.bench_function("cg_replay_into_hierarchy", |b| {
        b.iter(|| {
            let mut h = full_hierarchy(&scale);
            let mut r = TraceReader::new(trace_buf.as_slice()).unwrap();
            let n = replay_into(&mut r, &mut h).unwrap();
            h.drain();
            black_box(n)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
