//! Minimal blocking HTTP client for the job API.
//!
//! Hand-rolled over `std::net::TcpStream` like everything else in the
//! workspace: one request per connection (the server answers
//! `Connection: close`), explicit timeouts, and status+body returned
//! raw so callers decode with [`memsim_core::jsontext`].

use memsim_core::jsontext::{get_str, parse_json, JVal};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A client bound to one daemon address (`host:port`).
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:8191`) with a 10 s
    /// per-request timeout.
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            timeout: Duration::from_secs(10),
        }
    }

    /// One round trip: returns `(status, body)`.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Vec<u8>), String> {
        let stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connecting {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| format!("timeout: {e}"))?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| format!("timeout: {e}"))?;
        let mut out = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let body_bytes = body.unwrap_or("").as_bytes();
        write!(
            out,
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.addr,
            body_bytes.len()
        )
        .map_err(|e| format!("writing request: {e}"))?;
        out.write_all(body_bytes)
            .map_err(|e| format!("writing body: {e}"))?;
        out.flush().map_err(|e| format!("flush: {e}"))?;

        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader
            .read_line(&mut status_line)
            .map_err(|e| format!("reading status: {e}"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line {status_line:?}"))?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .map_err(|e| format!("reading headers: {e}"))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                }
            }
        }
        let mut body = Vec::new();
        match content_length {
            Some(n) => {
                body.resize(n, 0);
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("reading body: {e}"))?;
            }
            None => {
                reader
                    .read_to_end(&mut body)
                    .map_err(|e| format!("reading body: {e}"))?;
            }
        }
        Ok((status, body))
    }

    fn json_field(body: &[u8], field: &str) -> Result<String, String> {
        let text = std::str::from_utf8(body).map_err(|_| "non-UTF-8 response".to_string())?;
        let v = parse_json(text)?;
        let obj = v.as_obj().ok_or("response is not an object")?;
        Ok(get_str(obj, field)?.to_string())
    }

    /// Submit a job spec (raw JSON); returns the job id.
    pub fn submit(&self, spec_json: &str) -> Result<String, String> {
        let (status, body) = self.request("POST", "/jobs", Some(spec_json))?;
        if status != 202 {
            return Err(format!(
                "submit refused ({status}): {}",
                String::from_utf8_lossy(&body)
            ));
        }
        Self::json_field(&body, "id")
    }

    /// Fetch a job's status document (raw JSON).
    pub fn status(&self, id: &str) -> Result<String, String> {
        let (status, body) = self.request("GET", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(format!(
                "status failed ({status}): {}",
                String::from_utf8_lossy(&body)
            ));
        }
        String::from_utf8(body).map_err(|_| "non-UTF-8 status".into())
    }

    /// Poll until the job reaches a terminal state (or `timeout`
    /// elapses); returns that state's name.
    pub fn wait(&self, id: &str, timeout: Duration) -> Result<String, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let doc = self.status(id)?;
            let v = parse_json(&doc)?;
            let state = v
                .as_obj()
                .and_then(|o| o.get("state"))
                .and_then(JVal::as_str)
                .ok_or("status missing 'state'")?
                .to_string();
            if matches!(state.as_str(), "done" | "failed" | "cancelled") {
                return Ok(state);
            }
            if Instant::now() >= deadline {
                return Err(format!("timed out waiting for {id} (last state {state})"));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Fetch a finished job's result document.
    pub fn result(&self, id: &str) -> Result<Vec<u8>, String> {
        let (status, body) = self.request("GET", &format!("/jobs/{id}/result"), None)?;
        if status != 200 {
            return Err(format!(
                "result not available ({status}): {}",
                String::from_utf8_lossy(&body)
            ));
        }
        Ok(body)
    }

    /// Cancel a job; returns the resulting state name.
    pub fn cancel(&self, id: &str) -> Result<String, String> {
        let (status, body) = self.request("DELETE", &format!("/jobs/{id}"), None)?;
        if status != 200 {
            return Err(format!(
                "cancel failed ({status}): {}",
                String::from_utf8_lossy(&body)
            ));
        }
        Self::json_field(&body, "state")
    }

    /// Fetch the `/metrics` export (raw JSON).
    pub fn metrics(&self) -> Result<String, String> {
        let (status, body) = self.request("GET", "/metrics", None)?;
        if status != 200 {
            return Err(format!("metrics failed ({status})"));
        }
        String::from_utf8(body).map_err(|_| "non-UTF-8 metrics".into())
    }

    /// Liveness probe: `Ok` when `/healthz` answers 200.
    pub fn healthz(&self) -> Result<(), String> {
        let (status, _) = self.request("GET", "/healthz", None)?;
        if status == 200 {
            Ok(())
        } else {
            Err(format!("unhealthy ({status})"))
        }
    }
}
