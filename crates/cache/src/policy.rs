//! Replacement policies.
//!
//! The paper's simulator uses LRU; the alternatives here support the
//! replacement-policy ablation bench (`ablation_replacement`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which block of a full set is evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used block (the paper's policy).
    Lru,
    /// Evict the oldest-inserted block regardless of use.
    Fifo,
    /// Evict a uniformly random block (deterministic seed).
    Random,
    /// Tree pseudo-LRU (requires power-of-two ways).
    TreePlru,
    /// Static re-reference interval prediction with 2-bit RRPV.
    Srrip,
}

impl ReplacementPolicy {
    /// All policies, for sweeps.
    pub const ALL: [ReplacementPolicy; 5] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Srrip,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "Random",
            ReplacementPolicy::TreePlru => "TreePLRU",
            ReplacementPolicy::Srrip => "SRRIP",
        }
    }
}

/// SRRIP insertion re-reference prediction value ("long").
const SRRIP_INSERT: u64 = 2;
/// SRRIP maximum RRPV ("distant"; eviction candidate).
const SRRIP_MAX: u64 = 3;

/// Runtime state of a replacement policy across all sets of a cache.
///
/// `aux` carries one word per line (recency / insertion tick / RRPV);
/// `set_bits` carries one word per set (PLRU tree bits).
#[derive(Debug, Clone)]
pub(crate) struct PolicyState {
    policy: ReplacementPolicy,
    ways: usize,
    aux: Vec<u64>,
    set_bits: Vec<u64>,
    tick: u64,
    rng: SmallRng,
}

impl PolicyState {
    pub(crate) fn new(policy: ReplacementPolicy, sets: usize, ways: usize) -> Self {
        if policy == ReplacementPolicy::TreePlru {
            assert!(
                ways.is_power_of_two(),
                "TreePLRU requires power-of-two ways, got {ways}"
            );
        }
        Self {
            policy,
            ways,
            aux: vec![0; sets * ways],
            set_bits: vec![0; sets],
            tick: 0,
            rng: SmallRng::seed_from_u64(0x5eed_cafe),
        }
    }

    /// Record a hit on `way` of `set`.
    #[inline]
    pub(crate) fn on_hit(&mut self, set: usize, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.tick += 1;
                self.aux[set * self.ways + way] = self.tick;
            }
            ReplacementPolicy::Fifo | ReplacementPolicy::Random => {}
            ReplacementPolicy::TreePlru => self.plru_touch(set, way),
            ReplacementPolicy::Srrip => {
                self.aux[set * self.ways + way] = 0;
            }
        }
    }

    /// Record the installation of a new block into `way` of `set`.
    #[inline]
    pub(crate) fn on_install(&mut self, set: usize, way: usize) {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                self.tick += 1;
                self.aux[set * self.ways + way] = self.tick;
            }
            ReplacementPolicy::Random => {}
            ReplacementPolicy::TreePlru => self.plru_touch(set, way),
            ReplacementPolicy::Srrip => {
                self.aux[set * self.ways + way] = SRRIP_INSERT;
            }
        }
    }

    /// Choose the victim way in a full `set`.
    #[inline]
    pub(crate) fn victim(&mut self, set: usize) -> usize {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let base = set * self.ways;
                let mut best = 0;
                let mut best_tick = u64::MAX;
                for w in 0..self.ways {
                    let t = self.aux[base + w];
                    if t < best_tick {
                        best_tick = t;
                        best = w;
                    }
                }
                best
            }
            ReplacementPolicy::Random => self.rng.random_range(0..self.ways),
            ReplacementPolicy::TreePlru => self.plru_victim(set),
            ReplacementPolicy::Srrip => {
                let base = set * self.ways;
                loop {
                    for w in 0..self.ways {
                        if self.aux[base + w] >= SRRIP_MAX {
                            return w;
                        }
                    }
                    for w in 0..self.ways {
                        self.aux[base + w] += 1;
                    }
                }
            }
        }
    }

    /// Walk the PLRU tree toward `way`, flipping each internal node away
    /// from the taken direction.
    fn plru_touch(&mut self, set: usize, way: usize) {
        let mut node = 1usize; // 1-based heap index of the root
        let mut lo = 0usize;
        let mut hi = self.ways;
        let bits = &mut self.set_bits[set];
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            // point the bit at the *other* half (the least recently used side)
            if go_right {
                *bits &= !(1u64 << node);
                lo = mid;
                node = node * 2 + 1;
            } else {
                *bits |= 1u64 << node;
                hi = mid;
                node *= 2;
            }
        }
    }

    /// Follow the PLRU bits to the least-recently-used leaf.
    fn plru_victim(&mut self, set: usize) -> usize {
        let mut node = 1usize;
        let mut lo = 0usize;
        let mut hi = self.ways;
        let bits = self.set_bits[set];
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if bits & (1u64 << node) != 0 {
                lo = mid;
                node = node * 2 + 1;
            } else {
                hi = mid;
                node *= 2;
            }
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = PolicyState::new(ReplacementPolicy::Lru, 1, 4);
        for w in 0..4 {
            p.on_install(0, w);
        }
        p.on_hit(0, 0); // 0 becomes most recent
        assert_eq!(p.victim(0), 1);
        p.on_hit(0, 1);
        p.on_hit(0, 2);
        assert_eq!(p.victim(0), 3);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = PolicyState::new(ReplacementPolicy::Fifo, 1, 4);
        for w in 0..4 {
            p.on_install(0, w);
        }
        p.on_hit(0, 0);
        p.on_hit(0, 0);
        assert_eq!(p.victim(0), 0, "FIFO evicts the oldest insert even if hit");
    }

    #[test]
    fn random_victims_are_in_range_and_varied() {
        let mut p = PolicyState::new(ReplacementPolicy::Random, 1, 8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = p.victim(0);
            assert!(v < 8);
            seen.insert(v);
        }
        assert!(seen.len() > 3, "random policy should spread victims");
    }

    #[test]
    fn plru_victim_avoids_touched_way() {
        let mut p = PolicyState::new(ReplacementPolicy::TreePlru, 1, 8);
        for w in 0..8 {
            p.on_install(0, w);
        }
        p.on_hit(0, 5);
        assert_ne!(
            p.victim(0),
            5,
            "PLRU never evicts the most recently touched way"
        );
    }

    #[test]
    fn plru_cycles_through_all_ways() {
        // repeatedly install into the victim: every way must eventually be chosen
        let mut p = PolicyState::new(ReplacementPolicy::TreePlru, 1, 4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            let v = p.victim(0);
            seen.insert(v);
            p.on_install(0, v);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_odd_ways() {
        PolicyState::new(ReplacementPolicy::TreePlru, 1, 20);
    }

    #[test]
    fn srrip_prefers_distant_blocks() {
        let mut p = PolicyState::new(ReplacementPolicy::Srrip, 1, 4);
        for w in 0..4 {
            p.on_install(0, w); // all at RRPV=2
        }
        p.on_hit(0, 2); // way 2 -> RRPV 0
        let v = p.victim(0);
        assert_ne!(v, 2);
        // after aging, ways 0,1,3 are at 3; way 2 at 1
        assert!(p.aux[2] < SRRIP_MAX);
    }

    #[test]
    fn srrip_victim_terminates_after_aging() {
        let mut p = PolicyState::new(ReplacementPolicy::Srrip, 1, 2);
        p.on_hit(0, 0);
        p.on_hit(0, 1);
        let v = p.victim(0); // requires 3 aging rounds
        assert!(v < 2);
    }

    #[test]
    fn policies_have_names() {
        for p in ReplacementPolicy::ALL {
            assert!(!p.name().is_empty());
        }
    }
}
