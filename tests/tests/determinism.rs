//! Determinism and parallel/serial equivalence.

use memsim_core::configs::n_configs;
use memsim_core::runner::{evaluate_cached, evaluate_grid, SimCache};
use memsim_core::Design;
use memsim_integration_tests::test_scale;
use memsim_tech::Technology;
use memsim_workloads::WorkloadKind;

/// Two independent evaluations (fresh memos, fresh workload builds) give
/// bit-identical counters and metrics.
#[test]
fn independent_evaluations_are_identical() {
    let scale = test_scale();
    let design = Design::Nmm {
        nvm: Technology::FeRam,
        config: n_configs()[4],
    };
    let a = evaluate_cached(WorkloadKind::Velvet, &scale, &design, &SimCache::new());
    let b = evaluate_cached(WorkloadKind::Velvet, &scale, &design, &SimCache::new());
    assert_eq!(a.run.total_refs, b.run.total_refs);
    assert_eq!(a.run.mem, b.run.mem);
    for (x, y) in a.run.caches.iter().zip(&b.run.caches) {
        assert_eq!(x, y);
    }
    assert_eq!(a.metrics.time_s.to_bits(), b.metrics.time_s.to_bits());
    assert_eq!(a.metrics.dynamic_j.to_bits(), b.metrics.dynamic_j.to_bits());
}

/// The parallel grid gives the same results as serial evaluation in any
/// thread configuration.
#[test]
fn parallel_grid_equals_serial() {
    let scale = test_scale();
    let designs: Vec<Design> = n_configs()
        .iter()
        .take(3)
        .map(|c| Design::Nmm {
            nvm: Technology::Pcm,
            config: *c,
        })
        .collect();
    let mut points = vec![(WorkloadKind::Cg, Design::Baseline)];
    for d in &designs {
        points.push((WorkloadKind::Cg, *d));
        points.push((WorkloadKind::Lu, *d));
    }

    let serial_cache = SimCache::new();
    let serial: Vec<f64> = points
        .iter()
        .map(|(k, d)| evaluate_cached(*k, &scale, d, &serial_cache).metrics.time_s)
        .collect();

    for threads in [1, 2, 8] {
        let cache = SimCache::new();
        let grid = evaluate_grid(&points, &scale, &cache, Some(threads));
        for (r, expect) in grid.iter().zip(&serial) {
            assert_eq!(
                r.metrics.time_s.to_bits(),
                expect.to_bits(),
                "thread count {threads} changed a result"
            );
        }
    }
}
