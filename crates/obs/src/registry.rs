//! Named metric primitives: lock-free atomic counters, gauges, and
//! power-of-two-bucket histograms, plus the registry that names them.
//!
//! Writers hold an `Arc` to the primitive and update it with relaxed
//! atomics — after registration, the hot path never touches the registry
//! lock. Readers take a [`MetricsRegistry::snapshot`], which observes each
//! metric once under the registry lock, so a snapshot is internally
//! consistent with respect to registration (values themselves advance
//! monotonically and independently).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonically increasing event count.
///
/// `store` exists so an owner that keeps *local* (non-atomic) tallies on
/// the hot path can publish the cumulative value per epoch; published
/// values must still be monotone for rate computation to make sense.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Publish an absolute cumulative value (epoch publication).
    #[inline]
    pub fn store(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Set the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero, one per power of two.
///
/// Bucket 0 holds exactly the value 0; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i)`. Bucket 64 holds `[2^63, u64::MAX]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed power-of-two-bucket histogram of `u64` samples.
///
/// Recording is one relaxed `fetch_add` per sample (plus one for the sum):
/// cheap enough for per-chunk latencies, not meant for per-reference use.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The inclusive lower bound of bucket `i` (0, then powers of two).
    pub fn bucket_lower_bound(i: usize) -> u64 {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index {i} out of range");
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A copied-out view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per bucket (see [`Histogram::bucket_lower_bound`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded samples (wrapping on overflow).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// The inclusive upper bound of bucket `i`.
    fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) of the recorded samples.
    ///
    /// The sample at rank `ceil(q * count)` (1-based, clamped to at
    /// least 1) is located in its bucket, then linearly interpolated
    /// between the bucket's bounds — the same convention Prometheus's
    /// `histogram_quantile` uses. Power-of-two buckets bound the estimate
    /// within a factor of two of the true sample; bucket 0 (the value 0)
    /// is exact. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &count) in self.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if rank <= cum.saturating_add(count) {
                let lo = Histogram::bucket_lower_bound(i);
                let hi = Self::bucket_upper_bound(i);
                let frac = (rank - cum) as f64 / count as f64;
                // saturating: the top bucket's width rounds up to 2^63 as
                // an f64, which would overflow lo + width at frac = 1.0
                return lo.saturating_add(((hi - lo) as f64 * frac).round() as u64);
            }
            cum = cum.saturating_add(count);
        }
        Self::bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// The (p50, p90, p99) triple exports embed.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.5), self.quantile(0.9), self.quantile(0.99))
    }
}

/// One registered metric, by kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time value of one metric, as captured by a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram contents (boxed: a snapshot is ~64 buckets wide,
    /// counters and gauges are one word).
    Histogram(Box<HistogramSnapshot>),
}

/// A name → metric map. Registration is get-or-create and idempotent;
/// asking for an existing name with a different kind panics (a metric name
/// collision is a programming error, not a runtime condition).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        // A panic while holding the lock cannot corrupt a BTreeMap insert
        // we care about; keep serving metrics rather than poisoning the run.
        self.metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Get or create the counter called `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create the histogram called `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The value of counter `name`, if registered as one.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.lock().get(name) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// The value of gauge `name`, if registered as one.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        match self.lock().get(name) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// A consistent, name-sorted snapshot of every registered metric.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.lock()
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), value)
            })
            .collect()
    }

    /// Drop every registered metric. Existing `Arc` handles stay valid but
    /// are no longer reachable from the registry.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_is_get_or_create() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter_value("x"), Some(4));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let reg = Arc::new(MetricsRegistry::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let reg = Arc::clone(&reg);
            handles.push(thread::spawn(move || {
                let c = reg.counter("shared");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            reg.counter_value("shared"),
            Some(THREADS as u64 * PER_THREAD)
        );
    }

    #[test]
    fn histogram_bucket_edges() {
        // 0 has its own bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Powers of two open a new bucket; one-less stays below.
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        for k in 1..64 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k + 1, "2^{k}");
            assert_eq!(Histogram::bucket_index(v - 1), k, "2^{k}-1");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Histogram::bucket_lower_bound(1), 1);
        assert_eq!(Histogram::bucket_lower_bound(64), 1u64 << 63);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1023);
        h.record(1024);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[10], 1); // 1023 in [512, 1024)
        assert_eq!(snap.buckets[11], 1); // 1024 in [1024, 2048)
        assert_eq!(snap.buckets[64], 1);
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 1023 + 1024).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn quantiles_pin_the_bucket_interpolation_math() {
        // Empty histogram: every quantile is 0.
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0);

        // All mass in bucket 0 (the exact value 0).
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        let s = h.snapshot();
        assert_eq!((s.quantile(0.5), s.quantile(0.99)), (0, 0));

        // 100 samples in bucket 3 = [4, 7]: rank r of 100 interpolates to
        // 4 + round(3 * r/100). p50 -> rank 50 -> 4 + round(1.5) = 6,
        // p90 -> rank 90 -> 4 + round(2.7) = 7, p99 -> rank 99 -> 7.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(4);
        }
        let s = h.snapshot();
        assert_eq!(s.percentiles(), (6, 7, 7));

        // Mass split across buckets: 90 samples at 1 (bucket 1 = [1,1]),
        // 10 at 1024 (bucket 11 = [1024, 2047]). Ranks 1..=90 sit in
        // bucket 1 (exactly 1); rank 99 is the 9th of 10 in bucket 11:
        // 1024 + round(1023 * 9/10) = 1945.
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1024);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(0.9), 1);
        assert_eq!(s.quantile(0.99), 1945);

        // q = 0 clamps to rank 1, q = 1 is the maximum bucket's upper
        // bound; the top bucket saturates at u64::MAX.
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 2047);
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().quantile(1.0), u64::MAX);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b");
        reg.counter("a");
        reg.gauge("c");
        let names: Vec<String> = reg.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
