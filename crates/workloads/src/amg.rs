//! CORAL AMG2013 stand-in: multigrid V-cycles on a 3-D Poisson problem.
//!
//! AMG2013 is an *algebraic* multigrid solver; its memory behaviour is a
//! hierarchy of progressively coarser grids traversed by smoothing,
//! restriction, and prolongation operators ("updating points of the grid
//! according to a fixed pattern", as the paper puts it). This stand-in is
//! a geometric multigrid V-cycle over the 7-point Laplacian: the same
//! level-by-level sweep structure and inter-level transfers, with weighted-
//! Jacobi smoothing, full-coarsening restriction, and nearest-neighbour
//! prolongation.

use crate::{Class, Workload};
use memsim_trace::{AddressSpace, ChunkBuffer, SimVec, TraceSink};

/// AMG problem parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmgParams {
    /// Finest-grid extent per dimension (power of two recommended).
    pub n: usize,
    /// Number of V-cycles.
    pub cycles: usize,
    /// Pre- and post-smoothing sweeps per level.
    pub smooth: usize,
}

impl AmgParams {
    /// Preset for a size class.
    pub fn class(class: Class) -> Self {
        match class {
            // ≈ 9 MiB across the level hierarchy
            Class::Mini => Self {
                n: 64,
                cycles: 1,
                smooth: 2,
            },
            // ≈ 74 MiB
            Class::Demo => Self {
                n: 128,
                cycles: 1,
                smooth: 2,
            },
            // ≈ 290 MiB
            Class::Large => Self {
                n: 200,
                cycles: 1,
                smooth: 2,
            },
        }
    }
}

/// One grid level: solution, right-hand side, and residual fields.
struct Level {
    n: usize,
    u: SimVec<f64>,
    f: SimVec<f64>,
    r: SimVec<f64>,
}

/// The AMG benchmark instance.
pub struct Amg {
    params: AmgParams,
    space: AddressSpace,
    levels: Vec<Level>,
    initial_residual: Option<f64>,
    final_residual: Option<f64>,
}

impl Amg {
    /// Allocate the full grid hierarchy (untraced).
    pub fn new(params: AmgParams) -> Self {
        assert!(params.n >= 8, "finest grid too small");
        let mut space = AddressSpace::new();
        let mut levels = Vec::new();
        let mut n = params.n;
        let mut lvl = 0;
        while n >= 4 {
            let cells = n * n * n;
            levels.push(Level {
                n,
                u: SimVec::<f64>::zeroed(&mut space, &format!("L{lvl}.u"), cells),
                f: if lvl == 0 {
                    SimVec::from_fn(&mut space, "L0.f", cells, |i| {
                        ((i % 19) as f64 - 9.0) / 19.0
                    })
                } else {
                    SimVec::<f64>::zeroed(&mut space, &format!("L{lvl}.f"), cells)
                },
                r: SimVec::<f64>::zeroed(&mut space, &format!("L{lvl}.r"), cells),
            });
            n /= 2;
            lvl += 1;
        }
        Self {
            params,
            space,
            levels,
            initial_residual: None,
            final_residual: None,
        }
    }

    #[inline]
    fn idx(n: usize, i: usize, j: usize, k: usize) -> usize {
        (i * n + j) * n + k
    }

    /// Weighted-Jacobi smoothing sweeps on level `l` (traced).
    fn smooth(&mut self, l: usize, sweeps: usize, sink: &mut dyn TraceSink) {
        const W: f64 = 0.8; // weighted Jacobi damping
        let n = self.levels[l].n;
        for _ in 0..sweeps {
            // read phase into r (Jacobi uses the old iterate throughout)
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let c = Self::idx(n, i, j, k);
                        let lvl = &self.levels[l];
                        let mut nb = 0.0;
                        if i > 0 {
                            nb += lvl.u.ld(Self::idx(n, i - 1, j, k), sink);
                        }
                        if i + 1 < n {
                            nb += lvl.u.ld(Self::idx(n, i + 1, j, k), sink);
                        }
                        if j > 0 {
                            nb += lvl.u.ld(Self::idx(n, i, j - 1, k), sink);
                        }
                        if j + 1 < n {
                            nb += lvl.u.ld(Self::idx(n, i, j + 1, k), sink);
                        }
                        if k > 0 {
                            nb += lvl.u.ld(Self::idx(n, i, j, k - 1), sink);
                        }
                        if k + 1 < n {
                            nb += lvl.u.ld(Self::idx(n, i, j, k + 1), sink);
                        }
                        let f = lvl.f.ld(c, sink);
                        let u_old = lvl.u.ld(c, sink);
                        let jac = (f + nb) / 6.0;
                        let u_new = (1.0 - W) * u_old + W * jac;
                        self.levels[l].r.st(c, u_new, sink);
                    }
                }
            }
            // write phase: u <- r
            for c in 0..n * n * n {
                let v = self.levels[l].r.ld(c, sink);
                self.levels[l].u.st(c, v, sink);
            }
        }
    }

    /// Compute the residual `r = f - A u` on level `l` (traced).
    fn compute_residual(&mut self, l: usize, sink: &mut dyn TraceSink) {
        let n = self.levels[l].n;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let c = Self::idx(n, i, j, k);
                    let lvl = &self.levels[l];
                    let mut au = 6.0 * lvl.u.ld(c, sink);
                    if i > 0 {
                        au -= lvl.u.ld(Self::idx(n, i - 1, j, k), sink);
                    }
                    if i + 1 < n {
                        au -= lvl.u.ld(Self::idx(n, i + 1, j, k), sink);
                    }
                    if j > 0 {
                        au -= lvl.u.ld(Self::idx(n, i, j - 1, k), sink);
                    }
                    if j + 1 < n {
                        au -= lvl.u.ld(Self::idx(n, i, j + 1, k), sink);
                    }
                    if k > 0 {
                        au -= lvl.u.ld(Self::idx(n, i, j, k - 1), sink);
                    }
                    if k + 1 < n {
                        au -= lvl.u.ld(Self::idx(n, i, j, k + 1), sink);
                    }
                    let f = lvl.f.ld(c, sink);
                    self.levels[l].r.st(c, f - au, sink);
                }
            }
        }
    }

    /// Restrict the residual of level `l` to the rhs of level `l+1` by
    /// averaging each 2×2×2 block (traced), and clear the coarse iterate.
    fn restrict(&mut self, l: usize, sink: &mut dyn TraceSink) {
        let nf = self.levels[l].n;
        let nc = self.levels[l + 1].n;
        for i in 0..nc {
            for j in 0..nc {
                for k in 0..nc {
                    let mut acc = 0.0;
                    for (di, dj, dk) in [
                        (0, 0, 0),
                        (0, 0, 1),
                        (0, 1, 0),
                        (0, 1, 1),
                        (1, 0, 0),
                        (1, 0, 1),
                        (1, 1, 0),
                        (1, 1, 1),
                    ] {
                        let fi = (2 * i + di).min(nf - 1);
                        let fj = (2 * j + dj).min(nf - 1);
                        let fk = (2 * k + dk).min(nf - 1);
                        acc += self.levels[l].r.ld(Self::idx(nf, fi, fj, fk), sink);
                    }
                    let c = Self::idx(nc, i, j, k);
                    // average of the 8 fine cells × 4 (the h² operator scaling)
                    self.levels[l + 1].f.st(c, acc * 0.5, sink);
                    self.levels[l + 1].u.st(c, 0.0, sink);
                }
            }
        }
    }

    /// Prolongate the coarse correction of level `l+1` into level `l`'s
    /// iterate (nearest-neighbour interpolation, traced).
    fn prolongate(&mut self, l: usize, sink: &mut dyn TraceSink) {
        let nf = self.levels[l].n;
        let nc = self.levels[l + 1].n;
        for i in 0..nf {
            for j in 0..nf {
                for k in 0..nf {
                    let cc = Self::idx(
                        nc,
                        (i / 2).min(nc - 1),
                        (j / 2).min(nc - 1),
                        (k / 2).min(nc - 1),
                    );
                    let corr = self.levels[l + 1].u.ld(cc, sink);
                    let c = Self::idx(nf, i, j, k);
                    let cur = self.levels[l].u.ld(c, sink);
                    self.levels[l].u.st(c, cur + corr, sink);
                }
            }
        }
    }

    fn vcycle(&mut self, l: usize, sink: &mut dyn TraceSink) {
        let last = self.levels.len() - 1;
        self.smooth(l, self.params.smooth, sink);
        if l < last {
            self.compute_residual(l, sink);
            self.restrict(l, sink);
            self.vcycle(l + 1, sink);
            self.prolongate(l, sink);
        }
        self.smooth(l, self.params.smooth, sink);
    }

    /// Untraced fine-grid residual norm.
    fn residual_norm(&self) -> f64 {
        let lvl = &self.levels[0];
        let n = lvl.n;
        let u = lvl.u.as_slice();
        let f = lvl.f.as_slice();
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let c = Self::idx(n, i, j, k);
                    let mut au = 6.0 * u[c];
                    if i > 0 {
                        au -= u[Self::idx(n, i - 1, j, k)];
                    }
                    if i + 1 < n {
                        au -= u[Self::idx(n, i + 1, j, k)];
                    }
                    if j > 0 {
                        au -= u[Self::idx(n, i, j - 1, k)];
                    }
                    if j + 1 < n {
                        au -= u[Self::idx(n, i, j + 1, k)];
                    }
                    if k > 0 {
                        au -= u[Self::idx(n, i, j, k - 1)];
                    }
                    if k + 1 < n {
                        au -= u[Self::idx(n, i, j, k + 1)];
                    }
                    acc += (f[c] - au) * (f[c] - au);
                }
            }
        }
        acc.sqrt()
    }

    /// Number of grid levels in the hierarchy.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

impl Workload for Amg {
    fn name(&self) -> &'static str {
        "AMG2013"
    }

    fn run(&mut self, sink: &mut dyn TraceSink) {
        let mut sink = ChunkBuffer::new(sink);
        let sink = &mut sink;
        self.initial_residual = Some(self.residual_norm());
        for _ in 0..self.params.cycles {
            self.vcycle(0, sink);
        }
        sink.flush();
        self.final_residual = Some(self.residual_norm());
    }

    fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn verify(&self) -> Result<(), String> {
        let (init, fin) = match (self.initial_residual, self.final_residual) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err("AMG has not run".into()),
        };
        if !fin.is_finite() {
            return Err("residual diverged".into());
        }
        // one V-cycle of MG must beat plain smoothing decisively
        if fin >= 0.5 * init {
            return Err(format!(
                "V-cycle did not contract the residual: {init} -> {fin}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim_trace::sinks::CountingSink;

    #[test]
    fn hierarchy_depth() {
        let amg = Amg::new(AmgParams {
            n: 32,
            cycles: 1,
            smooth: 1,
        });
        // 32 -> 16 -> 8 -> 4
        assert_eq!(amg.level_count(), 4);
    }

    #[test]
    fn vcycle_contracts_residual() {
        let mut amg = Amg::new(AmgParams {
            n: 16,
            cycles: 2,
            smooth: 2,
        });
        let mut sink = CountingSink::new();
        amg.run(&mut sink);
        amg.verify().unwrap();
        let init = amg.initial_residual.unwrap();
        let fin = amg.final_residual.unwrap();
        assert!(fin < 0.2 * init, "init={init} fin={fin}");
    }

    #[test]
    fn verify_before_run_errors() {
        assert!(Amg::new(AmgParams {
            n: 16,
            cycles: 1,
            smooth: 1
        })
        .verify()
        .is_err());
    }

    #[test]
    fn coarse_levels_are_touched() {
        use memsim_trace::sinks::RegionProfiler;
        let mut amg = Amg::new(AmgParams {
            n: 16,
            cycles: 1,
            smooth: 1,
        });
        let mut prof = RegionProfiler::new(amg.space());
        amg.run(&mut prof);
        // every level's u must receive traffic
        for (i, r) in amg.space().regions().iter().enumerate() {
            if r.name.ends_with(".u") {
                assert!(prof.loads[i] + prof.stores[i] > 0, "{} untouched", r.name);
            }
        }
    }
}
