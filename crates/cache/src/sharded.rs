//! Set-sharded parallel front-end over [`Hierarchy`].
//!
//! Set-associative state is independent per set: two references that index
//! different sets at *every* level never read or write the same line, MRU
//! word, or replacement state. This module exploits that to run one
//! hierarchy replica per worker shard, each consuming only the slice of the
//! event stream whose addresses it owns, and to merge the per-shard
//! [`LevelStats`] into totals that are bit-identical to a sequential run.
//!
//! # Routing
//!
//! [`shard_class_bits`] intersects every level's set-index field (see
//! [`Cache::set_index_bits`]) into one address-bit range `[lo, hi)` that is
//! a sub-field of each of them. Addresses that differ in those bits index
//! different sets at every level, so the *class* `(addr >> lo) & mask`
//! partitions the stream into mutually non-interacting slices:
//!
//! * demand probes in different classes touch disjoint sets;
//! * a miss fill installs at the probed address's set — same class;
//! * an evicted victim shares its set (hence its class bits) with the block
//!   that displaced it, so writebacks walk down within the class too.
//!
//! A shard owns `class % nshards`. Per-class event order is preserved by
//! in-order queue delivery, so every `(level, set)` evolves exactly as it
//! would sequentially, and the merged stats follow by plain addition.
//!
//! # Fan-out
//!
//! The front-end implements [`TraceSink`]: it buffers events into chunks of
//! [`CHUNK_EVENTS`] and broadcasts each chunk (an `Arc<[TraceEvent]>`, so
//! the broadcast is a refcount bump, not a copy) to every shard's bounded
//! queue. Shards filter locally: a single-block event is kept only by its
//! owner, a block-straddling event is split at L1-block granularity exactly
//! like the sequential split loop with each part routed separately, and a
//! block-aligned size-0 event is dropped everywhere because the sequential
//! engine touches nothing for it. Shard-side filtering keeps the producer
//! branch-free and gives every worker a sequential scan over shared memory.
//!
//! # Work stealing — deliberately absent
//!
//! A shard's cache state is bound to its address classes, so no other
//! worker *can* take its work: stealing a chunk would mean probing sets
//! whose lines live in another replica. The per-shard `steals` counter is
//! registered anyway and pinned at zero — an honest, tested invariant
//! rather than an unimplemented feature.
//!
//! # Determinism
//!
//! [`ShardedHierarchy::finish`] joins workers in shard order and merges
//! with the saturating [`LevelStats::merge`], so the merged totals are
//! independent of thread scheduling. Only telemetry that depends on
//! cross-class adjacency (line-buffer and MRU-ring hit splits) may differ
//! from the sequential engine; the ten `LevelStats` fields may not.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use memsim_obs::{Counter, Gauge};
use memsim_trace::{TraceEvent, TraceSink};

use crate::cache::Cache;
use crate::hierarchy::{CountingMemory, Hierarchy, MainMemory};
use crate::stats::LevelStats;

/// Events buffered per broadcast chunk — matches the trace-file chunk size
/// so replayed chunks forward without re-buffering.
pub const CHUNK_EVENTS: usize = 4096;

/// Chunks a shard queue may hold before the producer blocks.
const QUEUE_BOUND: usize = 8;

/// Cap on class bits: 2^16 classes is already far beyond any useful shard
/// count, and the cap keeps the class mask well-formed for degenerate
/// configurations with very wide common set-index fields.
const MAX_CLASS_BITS: u32 = 16;

/// Terminal memories that can fold a sibling shard replica's counters into
/// their own when a sharded run is merged.
///
/// Implementations must make merging equivalent to having observed both
/// replicas' traffic on one instance: counter fields add, configuration
/// fields (which are identical across replicas, as every shard is cloned
/// from one prototype) are kept. Shard replicas start from the same freshly
/// constructed state, so any non-zero initial counts would be double
/// counted — callers hand [`ShardedHierarchy::new`] a new memory, exactly
/// as they would a sequential [`Hierarchy`].
pub trait ShardMerge {
    /// Fold `other`'s counters into `self`.
    fn merge_shard(&mut self, other: &Self);
}

impl ShardMerge for CountingMemory {
    fn merge_shard(&mut self, other: &Self) {
        self.loads = self.loads.saturating_add(other.loads);
        self.stores = self.stores.saturating_add(other.stores);
        self.bytes_loaded = self.bytes_loaded.saturating_add(other.bytes_loaded);
        self.bytes_stored = self.bytes_stored.saturating_add(other.bytes_stored);
    }
}

/// The address-bit range `[lo, hi)` usable for set sharding: the
/// intersection of every level's set-index field. `lo` is the widest block
/// offset, `hi` the smallest top of a set-index field, clamped so
/// `hi >= lo`. `hi == lo` (no common bits — e.g. a level with a single
/// set, or no levels at all) forces a single shard.
pub fn shard_class_bits(levels: &[Cache]) -> (u32, u32) {
    if levels.is_empty() {
        return (0, 0);
    }
    let mut lo = 0u32;
    let mut hi = u32::MAX;
    for c in levels {
        let (l, h) = c.set_index_bits();
        lo = lo.max(l);
        hi = hi.min(h);
    }
    (lo, hi.max(lo))
}

/// Per-shard routing data: which events this shard keeps out of a
/// broadcast chunk.
#[derive(Clone, Copy)]
struct ShardFilter {
    class_shift: u32,
    class_mask: u64,
    nshards: u64,
    shard: u64,
    l1_shift: u32,
    /// With one shard the filter forwards chunks unmodified: shard 0 *is*
    /// the sequential engine (this also covers cache-less hierarchies,
    /// where there is no block size to split against).
    pass_through: bool,
}

impl ShardFilter {
    #[inline]
    fn owns(&self, addr: u64) -> bool {
        ((addr >> self.class_shift) & self.class_mask) % self.nshards == self.shard
    }

    /// Copy this shard's slice of `events` into `out`, splitting
    /// block-straddlers exactly like the sequential split loop.
    fn filter_chunk(&self, events: &[TraceEvent], out: &mut Vec<TraceEvent>) {
        out.clear();
        for &ev in events {
            let first = ev.addr >> self.l1_shift;
            let last = ev.end().saturating_sub(1) >> self.l1_shift;
            if first == last {
                // Single block, including the unaligned size-0 probe: the
                // sequential engine probes block `first`, so its owner does.
                if self.owns(ev.addr) {
                    out.push(ev);
                }
            } else if ev.size == 0 {
                // Block-aligned size-0: the sequential split loop touches
                // nothing, so no shard sees it.
            } else {
                // Straddler: split at L1-block granularity exactly as the
                // sequential engine does, keeping only own-class parts.
                // Classes cannot split finer than L1 blocks, so each part
                // has exactly one owner.
                let block = 1u64 << self.l1_shift;
                let mask = block - 1;
                let mut addr = ev.addr;
                let mut remaining = u64::from(ev.size);
                while remaining > 0 {
                    let in_block = (block - (addr & mask)).min(remaining);
                    if self.owns(addr) {
                        out.push(TraceEvent {
                            addr,
                            size: in_block as u32,
                            kind: ev.kind,
                        });
                    }
                    addr += in_block;
                    remaining -= in_block;
                }
            }
        }
    }
}

/// A message to one shard worker.
enum Msg {
    /// A broadcast chunk; the worker filters it down to its own slice.
    Chunk(Arc<[TraceEvent]>),
    /// End of stream: drain, report, exit.
    Flush,
}

struct QueueInner {
    buf: VecDeque<Msg>,
    /// Set by a panicking worker so the producer stops blocking on a queue
    /// nobody will ever drain; the panic itself resurfaces at join.
    poisoned: bool,
}

/// A bounded MPSC channel built on `Mutex` + `Condvar` (the workspace has
/// no channel dependency, and two condvars are all this needs).
struct ShardQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    depth: Option<Arc<Gauge>>,
}

impl ShardQueue {
    fn new(depth: Option<Arc<Gauge>>) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                buf: VecDeque::with_capacity(QUEUE_BOUND + 1),
                poisoned: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            depth,
        }
    }

    /// Producer side: block while full. A poisoned queue silently drops
    /// the message — the worker is gone and its panic is re-raised when
    /// the run is finished (or joined on drop).
    fn push(&self, msg: Msg) {
        let mut inner = self.inner.lock().unwrap();
        while inner.buf.len() >= QUEUE_BOUND && !inner.poisoned {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.poisoned {
            return;
        }
        inner.buf.push_back(msg);
        if let Some(g) = &self.depth {
            g.set(inner.buf.len() as u64);
        }
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Shutdown push: ignores the bound so a full queue can never deadlock
    /// the flush handshake against a worker that already exited.
    fn push_flush(&self) {
        let mut inner = self.inner.lock().unwrap();
        if !inner.poisoned {
            inner.buf.push_back(Msg::Flush);
        }
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Worker side: block while empty.
    fn pop(&self) -> Msg {
        let mut inner = self.inner.lock().unwrap();
        while inner.buf.is_empty() {
            inner = self.not_empty.wait(inner).unwrap();
        }
        let msg = inner.buf.pop_front().unwrap();
        if let Some(g) = &self.depth {
            g.set(inner.buf.len() as u64);
        }
        drop(inner);
        self.not_full.notify_one();
        msg
    }

    /// Mark the queue dead after a worker panic: wake and unblock everyone.
    fn poison(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.poisoned = true;
        inner.buf.clear();
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Per-shard observability handles (only built when a prefix was given and
/// the global registry is enabled).
struct ShardObs {
    claims: Arc<Counter>,
    events: Arc<Counter>,
    total_events: Arc<Counter>,
}

/// What one worker hands back at flush.
struct WorkerOut<M> {
    levels: Vec<LevelStats>,
    total_refs: u64,
    demand_bytes: u64,
    line_buffer_hits: u64,
    memory: M,
}

/// The merged outcome of a sharded run: per-level stats, terminal memory,
/// and stream totals, all summed across shards in shard order.
#[derive(Debug, Clone)]
pub struct ShardedRun<M> {
    /// Per-level statistics, top-down, bit-identical to a sequential run
    /// over the same stream.
    pub levels: Vec<LevelStats>,
    /// The merged terminal memory.
    pub memory: M,
    /// Total demand references consumed (Equation 2's denominator).
    pub total_refs: u64,
    /// Total demand bytes moved by the reference stream.
    pub demand_bytes: u64,
    /// Line-buffer fast-path hits summed across shards. Telemetry only:
    /// the split between buffer re-hits and full probes depends on
    /// cross-class adjacency, so it legitimately differs from sequential.
    pub line_buffer_hits: u64,
}

fn run_worker<M: MainMemory>(
    mut hierarchy: Hierarchy<M>,
    queue: &ShardQueue,
    filter: ShardFilter,
    obs: Option<ShardObs>,
) -> WorkerOut<M> {
    let mut slice: Vec<TraceEvent> = Vec::with_capacity(CHUNK_EVENTS);
    while let Msg::Chunk(events) = queue.pop() {
        // Flight-recorder lane for this shard (the worker thread's name):
        // one span per chunk plus queue-depth / throughput counter tracks.
        // One relaxed load when the recorder is disarmed.
        let recording = memsim_obs::recorder::recording();
        let t0 = recording.then(std::time::Instant::now);
        if recording {
            memsim_obs::recorder::span_begin("shard.chunk");
        }
        let kept = if filter.pass_through {
            hierarchy.access_chunk(&events);
            events.len()
        } else {
            filter.filter_chunk(&events, &mut slice);
            hierarchy.access_chunk(&slice);
            slice.len()
        };
        if recording {
            memsim_obs::recorder::span_end("shard.chunk");
            let depth = queue.depth.as_ref().map_or(0, |g| g.get());
            memsim_obs::recorder::counter("shard.queue_depth", depth as f64);
            // always emitted so the event stream stays deterministic;
            // the value is zeroed in deterministic mode anyway
            let secs = t0.map_or(0.0, |t| t.elapsed().as_secs_f64());
            let mev_s = if secs > 0.0 {
                kept as f64 / secs / 1e6
            } else {
                0.0
            };
            memsim_obs::recorder::counter("shard.mev_s", mev_s);
        }
        if let Some(o) = &obs {
            o.claims.inc();
            o.events.add(kept as u64);
            o.total_events.add(kept as u64);
        }
    }
    hierarchy.drain();
    hierarchy.assert_consistent();
    WorkerOut {
        levels: hierarchy.levels().iter().map(|c| c.stats()).collect(),
        total_refs: hierarchy.total_refs(),
        demand_bytes: hierarchy.demand_bytes(),
        line_buffer_hits: hierarchy.line_buffer_hits(),
        memory: hierarchy.into_memory(),
    }
}

/// Parallel drop-in for [`Hierarchy`]: implements [`TraceSink`], fans
/// chunks out to set-bound worker shards, and merges their results into a
/// [`ShardedRun`] whose `LevelStats` are bit-identical to the sequential
/// engine's.
///
/// The requested shard count is capped at the number of address classes
/// the configuration supports ([`shard_class_bits`]); [`Self::shards`]
/// reports the effective count. With one effective shard the single worker
/// runs the unmodified sequential engine, so degenerate configurations
/// (cache-less hierarchies, single-set levels) stay correct.
pub struct ShardedHierarchy<M> {
    queues: Vec<Arc<ShardQueue>>,
    workers: Vec<JoinHandle<WorkerOut<M>>>,
    buf: Vec<TraceEvent>,
    result: Option<ShardedRun<M>>,
    chunks: Option<Arc<Counter>>,
}

impl<M: MainMemory + ShardMerge + Clone + Send + 'static> ShardedHierarchy<M> {
    /// Build a sharded engine over up to `shards` workers (at least one;
    /// capped at the configuration's class count), cloning one hierarchy
    /// replica per shard from `levels` and a freshly constructed `memory`.
    ///
    /// With `obs_prefix` set and the global registry enabled, registers
    /// per-shard telemetry under `{prefix}.shard{i}.` (`queue_depth`,
    /// `claims`, `steals`) plus `progress.shard{i}.events`,
    /// `progress.events`, and `progress.chunks`. The `steals` counter is
    /// registered but stays at zero: set-bound shards make work stealing
    /// structurally impossible (see the module docs).
    pub fn new(levels: Vec<Cache>, memory: M, shards: usize, obs_prefix: Option<&str>) -> Self {
        let (lo, hi) = shard_class_bits(&levels);
        let bits = (hi - lo).min(MAX_CLASS_BITS);
        let classes = 1u64 << bits;
        let nshards = shards.max(1).min(classes as usize);
        let l1_shift = levels.first().map_or(0, |c| c.set_index_bits().0);
        let obs_prefix = obs_prefix.filter(|_| memsim_obs::enabled());
        let reg = memsim_obs::global();
        let chunks = obs_prefix.map(|_| reg.counter("progress.chunks"));
        let total_events = obs_prefix.map(|_| reg.counter("progress.events"));
        let mut queues = Vec::with_capacity(nshards);
        let mut workers = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let filter = ShardFilter {
                class_shift: lo,
                class_mask: classes - 1,
                nshards: nshards as u64,
                shard: i as u64,
                l1_shift,
                pass_through: nshards == 1,
            };
            let (depth, obs) = match obs_prefix {
                Some(p) => {
                    // registered but never incremented — see module docs
                    let _ = reg.counter(&format!("{p}.shard{i}.steals"));
                    (
                        Some(reg.gauge(&format!("{p}.shard{i}.queue_depth"))),
                        Some(ShardObs {
                            claims: reg.counter(&format!("{p}.shard{i}.claims")),
                            events: reg.counter(&format!("progress.shard{i}.events")),
                            total_events: Arc::clone(total_events.as_ref().unwrap()),
                        }),
                    )
                }
                None => (None, None),
            };
            let queue = Arc::new(ShardQueue::new(depth));
            let replica = Hierarchy::new(levels.clone(), memory.clone());
            let worker_queue = Arc::clone(&queue);
            let handle = std::thread::Builder::new()
                .name(format!("memsim-shard{i}"))
                .spawn(move || {
                    let out = panic::catch_unwind(AssertUnwindSafe(|| {
                        run_worker(replica, &worker_queue, filter, obs)
                    }));
                    match out {
                        Ok(out) => out,
                        Err(payload) => {
                            // unblock the producer before re-raising; the
                            // payload surfaces again at join
                            worker_queue.poison();
                            panic::resume_unwind(payload);
                        }
                    }
                })
                .expect("spawn shard worker");
            queues.push(queue);
            workers.push(handle);
        }
        Self {
            queues,
            workers,
            buf: Vec::with_capacity(CHUNK_EVENTS),
            result: None,
            chunks,
        }
    }

    /// The effective shard (worker) count after class capping.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    fn send(&self, chunk: Arc<[TraceEvent]>) {
        for q in &self.queues {
            q.push(Msg::Chunk(Arc::clone(&chunk)));
        }
        if let Some(c) = &self.chunks {
            c.inc();
        }
    }

    fn broadcast_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let chunk: Arc<[TraceEvent]> = Arc::from(self.buf.as_slice());
        self.buf.clear();
        self.send(chunk);
    }

    /// Flush buffered events, stop the workers, and merge their results in
    /// shard order. Idempotent via the cached result; a worker panic is
    /// re-raised here (after every worker has been joined).
    fn finish_inner(&mut self) {
        if self.result.is_some() || self.workers.is_empty() {
            return;
        }
        self.broadcast_buf();
        for q in &self.queues {
            q.push_flush();
        }
        let mut merged: Option<ShardedRun<M>> = None;
        let mut panic_payload = None;
        for handle in self.workers.drain(..) {
            let out = match handle.join() {
                Ok(out) => out,
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                    continue;
                }
            };
            match &mut merged {
                None => {
                    merged = Some(ShardedRun {
                        levels: out.levels,
                        memory: out.memory,
                        total_refs: out.total_refs,
                        demand_bytes: out.demand_bytes,
                        line_buffer_hits: out.line_buffer_hits,
                    });
                }
                Some(run) => {
                    debug_assert_eq!(run.levels.len(), out.levels.len());
                    for (acc, s) in run.levels.iter_mut().zip(out.levels.iter()) {
                        acc.merge(s);
                    }
                    run.memory.merge_shard(&out.memory);
                    run.total_refs = run.total_refs.saturating_add(out.total_refs);
                    run.demand_bytes = run.demand_bytes.saturating_add(out.demand_bytes);
                    run.line_buffer_hits =
                        run.line_buffer_hits.saturating_add(out.line_buffer_hits);
                }
            }
        }
        if let Some(payload) = panic_payload {
            panic::resume_unwind(payload);
        }
        self.result = merged;
    }

    /// Consume the engine and return the merged run. Drives the flush
    /// handshake if [`TraceSink::flush`] was not already called.
    pub fn finish(mut self) -> ShardedRun<M> {
        self.finish_inner();
        self.result
            .take()
            .expect("sharded hierarchy yields a merged result after flush")
    }
}

impl<M: MainMemory + ShardMerge + Clone + Send + 'static> TraceSink for ShardedHierarchy<M> {
    fn access(&mut self, ev: TraceEvent) {
        self.buf.push(ev);
        if self.buf.len() >= CHUNK_EVENTS {
            self.broadcast_buf();
        }
    }

    fn access_chunk(&mut self, events: &[TraceEvent]) {
        // Replay delivers full-size chunks; forward those without
        // re-buffering (the Arc build is the only copy).
        if self.buf.is_empty() && events.len() >= CHUNK_EVENTS {
            self.send(Arc::from(events));
            return;
        }
        self.buf.extend_from_slice(events);
        if self.buf.len() >= CHUNK_EVENTS {
            self.broadcast_buf();
        }
    }

    fn flush(&mut self) {
        self.finish_inner();
    }
}

impl<M> Drop for ShardedHierarchy<M> {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        // Abandoned without finish(): stop the workers without blocking on
        // full queues, and swallow join results — a worker panic must not
        // double-panic during unwinding.
        for q in &self.queues {
            q.push_flush();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use memsim_trace::AccessKind;

    fn small_levels() -> Vec<Cache> {
        vec![
            Cache::new(CacheConfig::new("L1", 1024, 64, 2)),
            Cache::new(CacheConfig::new("L2", 4096, 64, 4)),
        ]
    }

    fn stream() -> Vec<TraceEvent> {
        // mixed hits, misses, straddlers, and size-0 probes across blocks
        let mut evs = Vec::new();
        for i in 0..5000u64 {
            let addr = (i * 37) % 16384;
            let kind = if i % 3 == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let size = match i % 7 {
                0 => 0,
                1 => 100, // straddles 64B blocks
                _ => 8,
            };
            evs.push(TraceEvent { addr, size, kind });
        }
        evs
    }

    fn sequential(events: &[TraceEvent]) -> (Vec<LevelStats>, CountingMemory, u64, u64) {
        let mut h = Hierarchy::new(small_levels(), CountingMemory::default());
        for chunk in events.chunks(64) {
            h.access_chunk(chunk);
        }
        h.drain();
        h.assert_consistent();
        (
            h.levels().iter().map(|c| c.stats()).collect(),
            *h.memory(),
            h.total_refs(),
            h.demand_bytes(),
        )
    }

    #[test]
    fn class_bits_intersect_levels() {
        let levels = small_levels();
        // L1: 1024/64/2 -> 8 sets, offset 6, index [6, 9)
        // L2: 4096/64/4 -> 16 sets, index [6, 10)
        assert_eq!(shard_class_bits(&levels), (6, 9));
        assert_eq!(shard_class_bits(&[]), (0, 0));
    }

    #[test]
    fn sharded_matches_sequential() {
        let events = stream();
        let (seq_levels, seq_mem, seq_refs, seq_bytes) = sequential(&events);
        for shards in [1usize, 2, 3, 8, 64] {
            let mut sh =
                ShardedHierarchy::new(small_levels(), CountingMemory::default(), shards, None);
            assert!(sh.shards() >= 1 && sh.shards() <= 8); // 3 class bits
            for chunk in events.chunks(100) {
                sh.access_chunk(chunk);
            }
            let run = sh.finish();
            assert_eq!(run.levels, seq_levels, "shards={shards}");
            assert_eq!(run.memory, seq_mem, "shards={shards}");
            assert_eq!(run.total_refs, seq_refs, "shards={shards}");
            assert_eq!(run.demand_bytes, seq_bytes, "shards={shards}");
        }
    }

    #[test]
    fn uncached_hierarchy_collapses_to_one_shard() {
        let events = stream();
        let mut seq = Hierarchy::new(Vec::new(), CountingMemory::default());
        seq.access_chunk(&events);
        seq.drain();
        let mut sh = ShardedHierarchy::new(Vec::new(), CountingMemory::default(), 4, None);
        assert_eq!(sh.shards(), 1);
        sh.access_chunk(&events);
        let run = sh.finish();
        assert_eq!(run.memory, *seq.memory());
        assert_eq!(run.total_refs, seq.total_refs());
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let sh = ShardedHierarchy::new(small_levels(), CountingMemory::default(), 2, None);
        drop(sh); // must not hang or panic
    }

    #[test]
    fn flush_then_finish_is_idempotent() {
        let events = stream();
        let mut sh = ShardedHierarchy::new(small_levels(), CountingMemory::default(), 2, None);
        sh.access_chunk(&events);
        sh.flush();
        let run = sh.finish();
        let (seq_levels, ..) = sequential(&events);
        assert_eq!(run.levels, seq_levels);
    }
}
