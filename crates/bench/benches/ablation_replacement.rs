//! Ablation: replacement policy at the DRAM page cache.
//!
//! The paper's simulator uses LRU throughout. This ablation replays the
//! same workload stream against the NMM DRAM cache under LRU, FIFO,
//! Random, TreePLRU, and SRRIP, reporting the main-memory loads each
//! policy lets through (lower = better filtering), and Criterion-measures
//! per-policy simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim_bench::bench_scale;
use memsim_cache::{Cache, CacheConfig, CountingMemory, Hierarchy, ReplacementPolicy};
use memsim_workloads::WorkloadKind;
use std::hint::black_box;

fn build_hierarchy(
    scale: &memsim_core::Scale,
    policy: ReplacementPolicy,
) -> Hierarchy<CountingMemory> {
    let caches = vec![
        Cache::new(CacheConfig::new(
            "L1",
            scale.l1_bytes,
            scale.line_bytes,
            scale.l1_ways,
        )),
        Cache::new(CacheConfig::new(
            "L2",
            scale.l2_bytes,
            scale.line_bytes,
            scale.l2_ways,
        )),
        Cache::new(CacheConfig::new(
            "L3",
            scale.l3_bytes,
            scale.line_bytes,
            scale.l3_ways,
        )),
        Cache::new(
            CacheConfig::new("L4", scale.scaled_capacity(512 << 20), 1024, 16)
                .with_policy(policy)
                .with_sectors(64),
        ),
    ];
    Hierarchy::new(caches, CountingMemory::default())
}

fn run_policy(
    scale: &memsim_core::Scale,
    kind: WorkloadKind,
    policy: ReplacementPolicy,
) -> (u64, u64) {
    let mut w = kind.build(scale.class);
    let mut h = build_hierarchy(scale, policy);
    w.run(&mut h);
    h.drain();
    (h.memory().loads, h.total_refs())
}

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    println!("\n========== ablation: DRAM-cache replacement policy ==========");
    for kind in [WorkloadKind::Cg, WorkloadKind::Graph500] {
        println!(
            "\n{} (memory loads per 1000 refs; lower is better):",
            kind.name()
        );
        for policy in ReplacementPolicy::ALL {
            let (mem_loads, refs) = run_policy(&scale, kind, policy);
            println!(
                "  {:<9} {:>8.3}",
                policy.name(),
                mem_loads as f64 * 1000.0 / refs as f64
            );
        }
    }
    println!("=============================================================\n");

    for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Srrip] {
        c.bench_function(
            &format!("ablation_replacement/sim_{}", policy.name()),
            |b| b.iter(|| black_box(run_policy(&scale, WorkloadKind::Cg, policy))),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
