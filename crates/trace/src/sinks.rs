//! Composable consumers of the address stream.
//!
//! These mirror the utility passes of the paper's PEBIL-based framework:
//! counting references, sampling the stream, profiling accesses per data
//! region (the input to the NDM oracle partitioner), and fanning one stream
//! out to several consumers.

use crate::event::{AccessKind, TraceEvent, TraceSink};
use crate::space::{AddressSpace, Region, RegionId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Discards every event. Useful to run a workload untraced.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn access(&mut self, _: TraceEvent) {}

    #[inline]
    fn access_chunk(&mut self, _: &[TraceEvent]) {}
}

/// Number of events [`ChunkBuffer`] accumulates before delivering a batch.
pub const CHUNK_EVENTS: usize = 64;

/// Batches events into a small fixed array and delivers them to the wrapped
/// sink through [`TraceSink::access_chunk`], amortizing virtual dispatch
/// over `CHUNK_EVENTS` events. Wrap a kernel's output sink in one of these:
///
/// ```
/// # use memsim_trace::{ChunkBuffer, CountingSink, TraceEvent, TraceSink};
/// # let mut counter = CountingSink::new();
/// # let sink: &mut dyn TraceSink = &mut counter;
/// let mut buffered = ChunkBuffer::new(sink);
/// let sink = &mut buffered;
/// sink.access(TraceEvent::load(0x40, 8));
/// sink.flush(); // delivers the partial batch, then flushes the inner sink
/// ```
///
/// `flush` drains the buffer before forwarding, so a kernel's trailing
/// `sink.flush()` keeps its exact semantics. Events are delivered in order
/// with no batch-boundary effects — observationally identical to unbuffered
/// per-event delivery. Dropping the buffer also drains it (unless the
/// thread is panicking), so a partial final batch is never silently lost
/// even when a kernel forgets its trailing `flush`.
pub struct ChunkBuffer<'a> {
    inner: &'a mut dyn TraceSink,
    buf: [TraceEvent; CHUNK_EVENTS],
    len: usize,
}

impl<'a> ChunkBuffer<'a> {
    /// Wrap `inner`, buffering up to [`CHUNK_EVENTS`] events per delivery.
    pub fn new(inner: &'a mut dyn TraceSink) -> Self {
        Self {
            inner,
            buf: [TraceEvent::load(0, 0); CHUNK_EVENTS],
            len: 0,
        }
    }

    /// Deliver any buffered events now (without flushing the inner sink).
    pub fn drain(&mut self) {
        if self.len > 0 {
            self.inner.access_chunk(&self.buf[..self.len]);
            self.len = 0;
        }
    }
}

impl Drop for ChunkBuffer<'_> {
    fn drop(&mut self) {
        // On unwind the stream is already abandoned mid-kernel; delivering
        // a tail batch then would feed the inner sink a truncated stream
        // while its own invariants may be mid-violation.
        if !std::thread::panicking() {
            self.drain();
        }
    }
}

impl TraceSink for ChunkBuffer<'_> {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        self.buf[self.len] = ev;
        self.len += 1;
        if self.len == CHUNK_EVENTS {
            self.inner.access_chunk(&self.buf);
            self.len = 0;
        }
    }

    fn access_chunk(&mut self, events: &[TraceEvent]) {
        self.drain();
        self.inner.access_chunk(events);
    }

    fn flush(&mut self) {
        self.drain();
        self.inner.flush();
    }
}

/// Counts loads, stores, and bytes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of load events seen.
    pub loads: u64,
    /// Number of store events seen.
    pub stores: u64,
    /// Total bytes read.
    pub load_bytes: u64,
    /// Total bytes written.
    pub store_bytes: u64,
}

impl CountingSink {
    /// A fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads + stores.
    pub fn total(&self) -> u64 {
        self.loads + self.stores
    }

    /// Fraction of references that are stores (0 when the stream is empty).
    pub fn store_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.stores as f64 / self.total() as f64
        }
    }
}

impl TraceSink for CountingSink {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        match ev.kind {
            AccessKind::Load => {
                self.loads += 1;
                self.load_bytes += u64::from(ev.size);
            }
            AccessKind::Store => {
                self.stores += 1;
                self.store_bytes += u64::from(ev.size);
            }
        }
    }
}

/// Records every event in order. Only for tests and small traces — the
/// whole point of the online framework is to avoid doing this at scale.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    /// The recorded stream.
    pub events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for RecordingSink {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
}

/// Forwards each event to two sinks.
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        self.0.access(ev);
        self.1.access(ev);
    }

    fn access_chunk(&mut self, events: &[TraceEvent]) {
        self.0.access_chunk(events);
        self.1.access_chunk(events);
    }

    fn flush(&mut self) {
        self.0.flush();
        self.1.flush();
    }
}

/// Forwards an unbiased ~`1/period` systematic sample of the stream to an
/// inner sink, with random phase to avoid aliasing against loop strides.
pub struct SamplingSink<S> {
    inner: S,
    period: u64,
    countdown: u64,
    rng: SmallRng,
    seen: u64,
    forwarded: u64,
}

impl<S: TraceSink> SamplingSink<S> {
    /// Sample roughly one in `period` events (`period >= 1`).
    pub fn new(inner: S, period: u64, seed: u64) -> Self {
        assert!(period >= 1, "sampling period must be at least 1");
        let mut rng = SmallRng::seed_from_u64(seed);
        let countdown = rng.random_range(0..period);
        Self {
            inner,
            period,
            countdown,
            rng,
            seen: 0,
            forwarded: 0,
        }
    }

    /// Events observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events forwarded to the inner sink so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Access the inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consume the sampler, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> TraceSink for SamplingSink<S> {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        self.seen += 1;
        if self.countdown == 0 {
            self.inner.access(ev);
            self.forwarded += 1;
            // re-randomize the gap so periodic access patterns do not alias
            self.countdown = self.rng.random_range(0..self.period.max(1)) + self.period / 2;
        } else {
            self.countdown -= 1;
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

/// Per-region load/store profile — the measurement behind the NDM design's
/// address-space partitioning ("identify a contiguous range of addresses
/// that accounts for the bulk of the memory references").
#[derive(Debug, Clone)]
pub struct RegionProfiler {
    starts: Vec<u64>,
    ends: Vec<u64>,
    ids: Vec<RegionId>,
    /// Loads per region, indexed by [`RegionId`].
    pub loads: Vec<u64>,
    /// Stores per region, indexed by [`RegionId`].
    pub stores: Vec<u64>,
    /// Events that fell outside every registered region.
    pub unattributed: u64,
}

impl RegionProfiler {
    /// Build a profiler over the regions currently registered in `space`.
    pub fn new(space: &AddressSpace) -> Self {
        Self::from_regions(space.regions())
    }

    /// Build a profiler over an explicit region list (must be
    /// address-ordered, as produced by [`AddressSpace::regions`]).
    pub fn from_regions(regions: &[Region]) -> Self {
        let n = regions.iter().map(|r| r.id.index() + 1).max().unwrap_or(0);
        Self {
            starts: regions.iter().map(|r| r.start).collect(),
            ends: regions.iter().map(|r| r.end()).collect(),
            ids: regions.iter().map(|r| r.id).collect(),
            loads: vec![0; n],
            stores: vec![0; n],
            unattributed: 0,
        }
    }

    #[inline]
    fn locate(&self, addr: u64) -> Option<RegionId> {
        let idx = self.starts.partition_point(|&s| s <= addr);
        if idx == 0 {
            return None;
        }
        (addr < self.ends[idx - 1]).then(|| self.ids[idx - 1])
    }

    /// Total references attributed to region `id`.
    pub fn total(&self, id: RegionId) -> u64 {
        self.loads[id.index()] + self.stores[id.index()]
    }

    /// Regions sorted by total reference count, hottest first.
    pub fn hottest(&self) -> Vec<(RegionId, u64)> {
        let mut v: Vec<(RegionId, u64)> = (0..self.loads.len())
            .map(|i| (RegionId(i as u32), self.loads[i] + self.stores[i]))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

impl TraceSink for RegionProfiler {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        match self.locate(ev.addr) {
            Some(id) => match ev.kind {
                AccessKind::Load => self.loads[id.index()] += 1,
                AccessKind::Store => self.stores[id.index()] += 1,
            },
            None => self.unattributed += 1,
        }
    }
}

/// Tracks the set of unique block-aligned addresses touched — a direct
/// working-set-size measurement at any granularity (cache line, page, …).
#[derive(Debug, Clone)]
pub struct WorkingSetSink {
    block_shift: u32,
    blocks: std::collections::HashSet<u64>,
}

impl WorkingSetSink {
    /// Track unique blocks of `block_bytes` (must be a power of two).
    pub fn new(block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        Self {
            block_shift: block_bytes.trailing_zeros(),
            blocks: Default::default(),
        }
    }

    /// Number of unique blocks touched.
    pub fn unique_blocks(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Unique blocks × block size — the touched footprint in bytes.
    pub fn touched_bytes(&self) -> u64 {
        self.unique_blocks() << self.block_shift
    }
}

impl TraceSink for WorkingSetSink {
    #[inline]
    fn access(&mut self, ev: TraceEvent) {
        let first = ev.addr >> self.block_shift;
        let last = (ev.end().saturating_sub(1)) >> self.block_shift;
        for b in first..=last {
            self.blocks.insert(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::AddressSpace;
    use proptest::prelude::*;

    fn ev(addr: u64, kind: AccessKind) -> TraceEvent {
        TraceEvent {
            addr,
            size: 8,
            kind,
        }
    }

    #[test]
    fn counting_sink_counts() {
        let mut c = CountingSink::new();
        c.access(ev(0, AccessKind::Load));
        c.access(ev(8, AccessKind::Load));
        c.access(ev(16, AccessKind::Store));
        assert_eq!(c.loads, 2);
        assert_eq!(c.stores, 1);
        assert_eq!(c.load_bytes, 16);
        assert_eq!(c.store_bytes, 8);
        assert_eq!(c.total(), 3);
        assert!((c.store_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counting_sink_fraction_is_zero() {
        assert_eq!(CountingSink::new().store_fraction(), 0.0);
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = TeeSink(CountingSink::new(), RecordingSink::new());
        tee.access(ev(0, AccessKind::Store));
        tee.flush();
        assert_eq!(tee.0.stores, 1);
        assert_eq!(tee.1.events.len(), 1);
    }

    #[test]
    fn sampler_rate_is_approximately_one_over_period() {
        let mut s = SamplingSink::new(CountingSink::new(), 100, 42);
        for i in 0..200_000u64 {
            s.access(ev(i * 8, AccessKind::Load));
        }
        let rate = s.forwarded() as f64 / s.seen() as f64;
        // randomized gap averages ~period, allow generous tolerance
        assert!(rate > 0.004 && rate < 0.02, "rate = {rate}");
    }

    #[test]
    fn sampler_period_one_forwards_everything_roughly() {
        let mut s = SamplingSink::new(CountingSink::new(), 1, 7);
        for i in 0..1000u64 {
            s.access(ev(i, AccessKind::Load));
        }
        // with period 1 the randomized gap is 0..1 + 0, so every event forwards
        assert!(s.forwarded() >= 500);
    }

    #[test]
    fn region_profiler_attributes_accesses() {
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 4096);
        let b = space.alloc("b", 4096);
        let mut p = RegionProfiler::new(&space);
        p.access(ev(a.start, AccessKind::Load));
        p.access(ev(a.start + 100, AccessKind::Store));
        p.access(ev(b.start + 8, AccessKind::Load));
        p.access(ev(0, AccessKind::Load)); // outside all regions
        assert_eq!(p.loads[a.id.index()], 1);
        assert_eq!(p.stores[a.id.index()], 1);
        assert_eq!(p.loads[b.id.index()], 1);
        assert_eq!(p.unattributed, 1);
        assert_eq!(p.total(a.id), 2);
        let hot = p.hottest();
        assert_eq!(hot[0].0, a.id);
    }

    #[test]
    fn dropping_a_chunk_buffer_delivers_the_partial_batch() {
        let mut counter = CountingSink::new();
        {
            let mut buffered = ChunkBuffer::new(&mut counter);
            for i in 0..(CHUNK_EVENTS as u64 + 5) {
                buffered.access(ev(i * 8, AccessKind::Load));
            }
            // no flush: one full batch was delivered, 5 events still buffered
        }
        assert_eq!(counter.loads, CHUNK_EVENTS as u64 + 5);
    }

    /// Pin how each sink treats an access that straddles a 64 B line:
    /// events flow through *unsplit* (splitting is the hierarchy's job at
    /// its own L1 block size), byte accounting uses the full size, and
    /// footprint-style sinks attribute every line the access touches.
    #[test]
    fn line_straddling_sizes_flow_through_sinks_unsplit() {
        let straddler = TraceEvent::store(60, 8); // touches lines 0 and 1

        let mut c = CountingSink::new();
        c.access(straddler);
        assert_eq!((c.stores, c.store_bytes), (1, 8));

        let mut w = WorkingSetSink::new(64);
        w.access(straddler);
        assert_eq!(w.unique_blocks(), 2);

        // region attribution is by start address, even when the access
        // extends past the region's end
        let mut space = AddressSpace::new();
        let a = space.alloc("a", 64);
        let mut p = RegionProfiler::new(&space);
        p.access(TraceEvent::store(a.end() - 4, 8));
        assert_eq!(p.stores[a.id.index()], 1);
        assert_eq!(p.unattributed, 0);

        // batching preserves the event verbatim — no size rewriting
        let mut rec = RecordingSink::new();
        {
            let mut buffered = ChunkBuffer::new(&mut rec);
            buffered.access(straddler);
        }
        assert_eq!(rec.events, vec![straddler]);
    }

    #[test]
    fn working_set_counts_unique_lines() {
        let mut w = WorkingSetSink::new(64);
        w.access(ev(0, AccessKind::Load));
        w.access(ev(8, AccessKind::Load)); // same line
        w.access(ev(64, AccessKind::Store)); // next line
        w.access(TraceEvent::load(60, 8)); // straddles lines 0 and 1
        assert_eq!(w.unique_blocks(), 2);
        assert_eq!(w.touched_bytes(), 128);
    }

    proptest! {
        /// The profiler never loses events: attributed + unattributed = total.
        #[test]
        fn profiler_conserves_events(addrs in proptest::collection::vec(0u64..0x1100_0000, 1..500)) {
            let mut space = AddressSpace::new();
            space.alloc("a", 65536);
            space.alloc("b", 65536);
            let mut p = RegionProfiler::new(&space);
            for &a in &addrs {
                p.access(ev(a, AccessKind::Load));
            }
            let attributed: u64 = p.loads.iter().sum::<u64>() + p.stores.iter().sum::<u64>();
            prop_assert_eq!(attributed + p.unattributed, addrs.len() as u64);
        }

        /// Sampling preserves the load/store mix to within statistical noise.
        #[test]
        fn sampler_preserves_mix(store_period in 2u64..10) {
            let mut s = SamplingSink::new(CountingSink::new(), 50, 3);
            for i in 0..100_000u64 {
                let kind = if i % store_period == 0 { AccessKind::Store } else { AccessKind::Load };
                s.access(ev(i * 8, kind));
            }
            let expected = 1.0 / store_period as f64;
            let got = s.inner().store_fraction();
            prop_assert!((got - expected).abs() < 0.05, "expected {expected}, got {got}");
        }
    }
}
